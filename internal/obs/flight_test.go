package obs

import (
	"path/filepath"
	"regexp"
	"testing"
	"time"
)

// TestFlightRecorderEpochFilenames pins the dump naming contract: epochal
// traces dump as flight-e<epoch>-NNN-<label>.trace.json so multi-epoch
// soak dumps stay attributable, while classic rounds keep the original
// flight-NNN-<label> shape.
func TestFlightRecorderEpochFilenames(t *testing.T) {
	fr := NewFlightRecorder(t.TempDir(), 4, 0)

	path, err := fr.Record(&RoundTrace{
		Label: "epoch", Err: "boom", Epoch: 17, HasEpoch: true, Spans: goldenSpans(),
	})
	if err != nil || path == "" {
		t.Fatalf("epochal failure did not dump: %q %v", path, err)
	}
	if got := filepath.Base(path); got != "flight-e17-001-epoch.trace.json" {
		t.Fatalf("epochal dump named %q", got)
	}

	// Epoch 0 is a real epoch, not "no epoch" — HasEpoch disambiguates.
	path, err = fr.Record(&RoundTrace{Label: "epoch", Err: "boom", Epoch: 0, HasEpoch: true})
	if err != nil || filepath.Base(path) != "flight-e0-002-epoch.trace.json" {
		t.Fatalf("epoch-zero dump named %q (err %v)", filepath.Base(path), err)
	}

	path, err = fr.Record(&RoundTrace{Label: "classic", Err: "boom"})
	if err != nil || filepath.Base(path) != "flight-003-classic.trace.json" {
		t.Fatalf("classic dump named %q (err %v)", filepath.Base(path), err)
	}
}

// TestFlightRecorderForceDump pins Dump, the ops alarm path: it dumps the
// ring regardless of triggers, shares the sequence counter with Record,
// and stays nil-safe.
func TestFlightRecorderForceDump(t *testing.T) {
	fr := NewFlightRecorder(t.TempDir(), 4, time.Hour)
	if _, err := fr.Record(&RoundTrace{Label: "clean", Spans: goldenSpans()}); err != nil {
		t.Fatal(err)
	}

	path, err := fr.Dump("slo_breach", 3)
	if err != nil || path == "" {
		t.Fatalf("force dump failed: %q %v", path, err)
	}
	want := regexp.MustCompile(`^flight-e3-\d{3}-slo_breach\.trace\.json$`)
	if base := filepath.Base(path); !want.MatchString(base) {
		t.Fatalf("force dump named %q", base)
	}

	// No epoch context drops the e-tag.
	path, err = fr.Dump("anomaly", -1)
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(path); regexp.MustCompile(`e-?\d`).MatchString(base) {
		t.Fatalf("epoch-free dump carries an epoch tag: %q", base)
	}

	var nilFR *FlightRecorder
	if path, err := nilFR.Dump("x", 1); err != nil || path != "" {
		t.Fatalf("nil recorder force-dumped: %q %v", path, err)
	}
}
