// Package obs is the repo's dependency-free observability substrate: a
// Registry of named counters, gauges, and fixed-bucket histograms, a
// PhaseTimer for span-style phase tracing of an auction round, and
// exporters for an expvar-style JSON snapshot and the Prometheus text
// format (export.go).
//
// The package is built around one contract: a nil *Registry — and every
// metric handle obtained from one — is a valid no-op. Instrumented code
// never branches on "is observability on"; it calls Add/Set/Observe
// unconditionally on handles that may be nil, and the nil receiver check
// is the entire disabled-path cost. Hot loops that cannot afford even
// that fetch their handles once up front and skip instrumentation
// entirely when the handle is nil (see core.Auctioneer.SetObserver).
//
// All metric mutations are atomic, so one Registry can serve every party
// and goroutine of a process; metric creation is guarded by a mutex and
// idempotent (same name and labels return the same handle).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric. Metrics with the
// same family name but different labels are distinct series (the phase
// histogram uses this: one series per round phase).
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. The nil Counter
// discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on the nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil Gauge discards all
// updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on the nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound plus a running sum and total count. Buckets are chosen at
// creation and never change, so Observe is lock-free. The nil Histogram
// discards all observations.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf follows
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 on the nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on the nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DurationBuckets are the default latency bounds in seconds: 100 µs to
// 60 s, roughly ×2.5 per step. They cover a single masked comparison
// batch at the bottom and a full N=300, k=129 round at the top.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metricKind discriminates families in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is every series sharing one metric name.
type family struct {
	name   string
	kind   metricKind
	bounds []float64          // histogram families only
	series map[string]*series // keyed by rendered label string
}

type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a process-wide collection of metrics. The zero value is not
// usable; call NewRegistry. A nil *Registry is the disabled registry:
// every lookup returns a nil handle and every exporter emits an empty
// snapshot.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	help     map[string]string // family name → # HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), help: make(map[string]string)}
}

// Help attaches a one-line description to a metric family, emitted as a
// # HELP line by the Prometheus exporter. It may be called before or
// after the family's first series exists; families without help text are
// exported exactly as before. Nil-safe.
func (r *Registry) Help(name, text string) {
	if r == nil || text == "" {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// helpFor returns the family's help text ("" when unset).
func (r *Registry) helpFor(name string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name]
}

// labelKey renders labels deterministically for series identity and
// export ({k1="v1",k2="v2"} sorted by key; empty for no labels).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// get returns (creating if needed) the series for name+labels, checking
// that the family kind matches. Mixing kinds under one name panics: that
// is a programming error, not a runtime condition.
func (r *Registry) get(name string, kind metricKind, bounds []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered with conflicting kinds", name))
	}
	key := labelKey(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...)}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns the nil (no-op) Counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, kindCounter, nil, labels).c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns the nil (no-op) Gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, kindGauge, nil, labels).g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the family's
// original bounds). A nil registry returns the nil (no-op) Histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	return r.get(name, kindHistogram, sorted, labels).h
}
