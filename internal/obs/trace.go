package obs

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the span model behind round tracing: a Tracer hands out
// Spans keyed by (TraceID, SpanID), spans carry parent links, attributes,
// and timestamped events, and finished spans land in a bounded buffer
// the exporters (traceexport.go) and the flight recorder (flight.go)
// drain. Like the metric side of this package, everything follows the
// nil no-op contract: a nil *Tracer returns nil *Spans, and every method
// on a nil Span or Tracer does nothing and reads no clock, so code can
// be instrumented unconditionally and pay nothing when tracing is off.

// TraceID identifies one logical round across processes. Zero is "no
// trace".
type TraceID uint64

// SpanID identifies one span within a trace. Zero is "no span".
type SpanID uint64

// SpanContext names a span so children — possibly on the other end of a
// wire — can parent onto it.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// SpanEvent is a point-in-time annotation on a span (a fault injection,
// a replay dedup, a retry). At is the offset from the span's start.
type SpanEvent struct {
	Name  string
	At    time.Duration
	Attrs []Label
}

// Span is one timed operation. Fields are read by exporters after End;
// Event may be called concurrently with other Events on the same span.
// The nil Span discards everything and never reads the clock.
type Span struct {
	Name     string
	Proc     string // logical process ("auctioneer", "bidder-3")
	Ctx      SpanContext
	Parent   SpanContext // zero for a root span
	Start    time.Time   // carries the monotonic clock reading
	Duration time.Duration
	Attrs    []Label
	Events   []SpanEvent
	Err      string

	tracer *tracerCore
	mu     sync.Mutex
	ended  bool
}

// Context returns the span's identity (zero on the nil Span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.Ctx
}

// Event appends a timestamped event to the span.
func (s *Span) Event(name string, attrs ...Label) {
	if s == nil {
		return
	}
	at := time.Since(s.Start)
	s.mu.Lock()
	s.Events = append(s.Events, SpanEvent{Name: name, At: at, Attrs: attrs})
	s.mu.Unlock()
}

// Annotate attaches an attribute to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, L(key, value))
	s.mu.Unlock()
}

// SetError marks the span failed.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Err = msg
	s.mu.Unlock()
}

// End stamps the span's duration and hands it to the tracer's buffer.
// End is idempotent; only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.Start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.Duration = d
	s.mu.Unlock()
	s.tracer.finish(s)
}

// tracerCore is the buffer shared by a Tracer and all its Named views.
type tracerCore struct {
	mu      sync.Mutex
	spans   []*Span
	max     int
	dropped uint64
	idCtr   atomic.Uint64
	idBase  uint64
}

// DefaultMaxSpans bounds a tracer's finished-span buffer. A fully traced
// N=300 round is well under 1000 spans; the cap only matters when a
// caller forgets to drain between rounds.
const DefaultMaxSpans = 16384

func (tc *tracerCore) finish(s *Span) {
	if tc == nil {
		return
	}
	tc.mu.Lock()
	if len(tc.spans) >= tc.max {
		tc.dropped++
	} else {
		tc.spans = append(tc.spans, s)
	}
	tc.mu.Unlock()
}

// nextID derives a process-unique 64-bit id: the FNV hash of the process
// name seeds the high bits, a golden-ratio-stepped counter fills the
// rest, and zero (the "no id" sentinel) is skipped.
func (tc *tracerCore) nextID() uint64 {
	for {
		n := tc.idCtr.Add(1)
		id := tc.idBase ^ (n * 0x9e3779b97f4a7c15)
		if id != 0 {
			return id
		}
	}
}

// Tracer creates spans for one logical process and buffers the finished
// ones. Named views share the buffer, so a single in-process demo can
// trace auctioneer, TTP, and bidders into one dump. The nil Tracer is
// the disabled tracer: StartTrace/StartSpan return nil, exports are
// empty.
type Tracer struct {
	core *tracerCore
	proc string
}

// NewTracer returns a tracer whose spans carry the given process name.
func NewTracer(proc string) *Tracer {
	return NewTracerBuffered(proc, DefaultMaxSpans)
}

// NewTracerBuffered is NewTracer with an explicit span-buffer cap.
func NewTracerBuffered(proc string, maxSpans int) *Tracer {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(proc))
	return &Tracer{
		core: &tracerCore{max: maxSpans, idBase: h.Sum64()},
		proc: proc,
	}
}

// Named returns a view of the same tracer whose spans carry a different
// process name. Nil-safe.
func (t *Tracer) Named(proc string) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{core: t.core, proc: proc}
}

// Proc returns the tracer's process name ("" on the nil Tracer).
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// StartTrace opens a root span in a fresh trace.
func (t *Tracer) StartTrace(name string, attrs ...Label) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, SpanContext{Trace: TraceID(t.core.nextID())}, attrs)
}

// StartSpan opens a child span. parent may be a local span's Context or
// a context received over the wire; an invalid parent yields a root span
// in a fresh trace.
func (t *Tracer) StartSpan(name string, parent SpanContext, attrs ...Label) *Span {
	if t == nil {
		return nil
	}
	if parent.Trace == 0 {
		return t.StartTrace(name, attrs...)
	}
	return t.start(name, parent, attrs)
}

func (t *Tracer) start(name string, parent SpanContext, attrs []Label) *Span {
	s := &Span{
		Name:   name,
		Proc:   t.proc,
		Ctx:    SpanContext{Trace: parent.Trace, Span: SpanID(t.core.nextID())},
		Start:  time.Now(),
		Attrs:  attrs,
		tracer: t.core,
	}
	if parent.Span != 0 {
		s.Parent = parent
	}
	return s
}

// Snapshot copies the finished spans without draining them, ordered by
// start time. Nil-safe.
func (t *Tracer) Snapshot() []*Span {
	if t == nil {
		return nil
	}
	t.core.mu.Lock()
	out := append([]*Span(nil), t.core.spans...)
	t.core.mu.Unlock()
	sortSpans(out)
	return out
}

// Take drains every finished span, ordered by start time. Nil-safe.
func (t *Tracer) Take() []*Span {
	if t == nil {
		return nil
	}
	t.core.mu.Lock()
	out := t.core.spans
	t.core.spans = nil
	t.core.mu.Unlock()
	sortSpans(out)
	return out
}

// TakeTrace drains the finished spans belonging to one trace, leaving
// other traces buffered (for callers sharing a tracer across concurrent
// rounds). Nil-safe.
func (t *Tracer) TakeTrace(id TraceID) []*Span {
	if t == nil {
		return nil
	}
	t.core.mu.Lock()
	var out, keep []*Span
	for _, s := range t.core.spans {
		if s.Ctx.Trace == id {
			out = append(out, s)
		} else {
			keep = append(keep, s)
		}
	}
	t.core.spans = keep
	t.core.mu.Unlock()
	sortSpans(out)
	return out
}

// Dropped returns how many finished spans were discarded because the
// buffer was full.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.core.mu.Lock()
	defer t.core.mu.Unlock()
	return t.core.dropped
}

// sortSpans orders spans by start time, breaking ties by span id so the
// order is deterministic.
func sortSpans(spans []*Span) {
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].Ctx.Span < spans[j].Ctx.Span
	})
}
