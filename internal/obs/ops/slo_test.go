package ops

import (
	"testing"
	"time"
)

// hot returns a monitor whose thresholds trip on a single violating
// sample: with FastWindow 4 / SlowWindow 8 and the default 1% objective,
// one violation burns fast at 25x and slow at 12.5x — over both default
// thresholds (10, 2).
func hot() *Monitor {
	return NewMonitor(SLOConfig{
		Phases:     map[string]time.Duration{"round": 10 * time.Millisecond},
		FastWindow: 4,
		SlowWindow: 8,
	})
}

func TestMonitorNilAndEmpty(t *testing.T) {
	if m := NewMonitor(SLOConfig{}); m != nil {
		t.Fatal("empty config must yield the nil monitor")
	}
	var m *Monitor
	if b, rec := m.Observe("round", time.Hour); b != nil || rec {
		t.Fatal("nil monitor reacted")
	}
	if m.Breached() != nil || m.Status() != nil {
		t.Fatal("nil monitor leaked state")
	}
}

func TestMonitorBreachLatchAndRecovery(t *testing.T) {
	m := hot()

	// Unbound phases are ignored.
	if b, rec := m.Observe("unbound", time.Hour); b != nil || rec {
		t.Fatal("unbound phase tripped the monitor")
	}

	// Good samples never breach.
	for i := 0; i < 10; i++ {
		if b, _ := m.Observe("round", time.Millisecond); b != nil {
			t.Fatal("in-SLO sample breached")
		}
	}

	b, rec := m.Observe("round", 50*time.Millisecond)
	if b == nil || rec {
		t.Fatalf("violation did not breach: %v %v", b, rec)
	}
	if b.Phase != "round" || b.Observed != 50*time.Millisecond || b.Ceiling != 10*time.Millisecond {
		t.Fatalf("breach fields: %+v", b)
	}
	if b.FastBurn < 10 || b.SlowBurn < 2 {
		t.Fatalf("breach burns under thresholds: %+v", b)
	}
	if got := m.Breached(); len(got) != 1 || got[0] != "round" {
		t.Fatalf("Breached() = %v", got)
	}

	// While latched, further violations are NOT new transitions.
	if b, rec := m.Observe("round", time.Second); b != nil || rec {
		t.Fatalf("latched breach re-fired: %v %v", b, rec)
	}

	// Good samples roll the violations out of the slow window; the latch
	// releases exactly once.
	recoveries := 0
	for i := 0; i < 16; i++ {
		if b, rec := m.Observe("round", time.Millisecond); b != nil {
			t.Fatal("recovery path breached")
		} else if rec {
			recoveries++
		}
	}
	if recoveries != 1 {
		t.Fatalf("recovered %d times, want exactly 1", recoveries)
	}
	if got := m.Breached(); len(got) != 0 {
		t.Fatalf("still breached after recovery: %v", got)
	}
}

// TestMonitorColdWindowCannotAlarmEarly pins the denominator choice: burn
// divides by the configured window size, not the filled count, so the
// very first sample — even a violating one — cannot trip wide windows
// that need more evidence.
func TestMonitorColdWindowCannotAlarmEarly(t *testing.T) {
	m := NewMonitor(SLOConfig{
		Phases: map[string]time.Duration{"round": 10 * time.Millisecond},
		// Defaults: FastWindow 12, SlowWindow 96 → one violation burns
		// fast at 8.3 (< 10); two burn at 16.7 fast and 2.08 slow.
	})
	if b, _ := m.Observe("round", time.Second); b != nil {
		t.Fatalf("single cold violation breached: %+v", b)
	}
	b, _ := m.Observe("round", time.Second)
	if b == nil {
		t.Fatal("second violation should breach the default windows")
	}
}

// TestMonitorRingRollover pins the circular window: old violations age
// out exactly SlowWindow samples later, visible through Status.
func TestMonitorRingRollover(t *testing.T) {
	m := hot() // SlowWindow 8
	m.Observe("round", 50*time.Millisecond)
	for i := 0; i < 7; i++ {
		m.Observe("round", time.Millisecond)
	}
	st := m.Status()["round"]
	if st.Samples != 8 || st.SlowBurn == 0 {
		t.Fatalf("violation should still be in the full window: %+v", st)
	}
	m.Observe("round", time.Millisecond) // 9th sample evicts the violation
	st = m.Status()["round"]
	if st.Samples != 8 || st.SlowBurn != 0 || st.FastBurn != 0 {
		t.Fatalf("violation did not roll out: %+v", st)
	}
	if st.Violations != 1 {
		t.Fatalf("lifetime violations = %d, want 1", st.Violations)
	}
}

func TestMonitorStatusPercentiles(t *testing.T) {
	m := hot()
	for _, ms := range []int{1, 2, 3, 4} {
		m.Observe("round", time.Duration(ms)*time.Millisecond)
	}
	st := m.Status()["round"]
	if st.CeilingMs != 10 {
		t.Fatalf("ceiling_ms = %v", st.CeilingMs)
	}
	if st.P50Ms > st.P95Ms || st.P95Ms > st.P99Ms {
		t.Fatalf("percentiles not monotone: %+v", st)
	}
	if st.P99Ms != 4 {
		t.Fatalf("p99_ms = %v, want 4", st.P99Ms)
	}
	if st.Breached {
		t.Fatal("healthy phase marked breached")
	}
}
