package ops

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"lppa/internal/obs"
)

// The burn-rate monitor. The SLO block in a LOAD_*.json snapshot records
// p99 latency ceilings per phase; treating "sample over its ceiling" as
// budget spend gives each phase an error budget of Objective (1% for a
// p99 ceiling). Following the multi-window burn-rate pattern, a breach
// requires BOTH a fast window burning hot (catches sharp regressions
// within a few epochs) AND a slow window burning above sustain (filters
// one-off spikes that a single fast window would page on). Burn is
// computed against the full window size even before the window fills, so
// a cold monitor cannot alarm off one unlucky sample — the violating
// samples must accumulate either way.

// SLOConfig configures the burn-rate monitor.
type SLOConfig struct {
	// Phases maps a phase/span name to its p99 latency ceiling. An empty
	// map disables the monitor.
	Phases map[string]time.Duration
	// Objective is the tolerated violation fraction; 0 defaults to 0.01
	// (the ceilings are p99s).
	Objective float64
	// FastWindow and SlowWindow are rolling sample counts (not wall
	// time: the service's cadence is epochs, so windows are epochs).
	// Defaults 12 and 96.
	FastWindow, SlowWindow int
	// FastBurn and SlowBurn are the burn-rate thresholds; a breach
	// requires both windows at or above their threshold. Defaults 10
	// and 2.
	FastBurn, SlowBurn float64
}

// DefaultSLOConfig fills zero fields with the defaults above.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 {
		c.Objective = 0.01
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 12
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 96
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 10
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 2
	}
	return c
}

// Breach describes one burn-rate breach (or recovery) transition.
type Breach struct {
	Phase    string
	Observed time.Duration // the sample that tipped the windows
	Ceiling  time.Duration
	FastBurn float64
	SlowBurn float64
}

func (b Breach) String() string {
	return fmt.Sprintf("phase %q: %v over ceiling %v (burn fast %.1f, slow %.1f)",
		b.Phase, b.Observed, b.Ceiling, b.FastBurn, b.SlowBurn)
}

// PhaseStatus is one phase's live SLO state for /statusz.
type PhaseStatus struct {
	CeilingMs  float64 `json:"ceiling_ms"`
	Samples    int     `json:"samples"` // samples currently in the slow window
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	FastBurn   float64 `json:"fast_burn"`
	SlowBurn   float64 `json:"slow_burn"`
	Violations uint64  `json:"violations_total"`
	Breached   bool    `json:"breached"`
}

// phaseTrack is the rolling window state for one phase.
type phaseTrack struct {
	ceiling    time.Duration
	ring       []time.Duration // capacity SlowWindow, filled circularly
	next       int
	filled     int
	violations uint64 // lifetime count
	breached   bool   // latched until burn falls under thresholds
}

// Monitor evaluates per-phase latency samples against an SLOConfig.
// Safe for concurrent Observe; the nil *Monitor ignores everything.
type Monitor struct {
	mu     sync.Mutex
	cfg    SLOConfig
	phases map[string]*phaseTrack
}

// NewMonitor returns a monitor for the given config, or nil (the no-op
// monitor) when the config names no phases.
func NewMonitor(cfg SLOConfig) *Monitor {
	if len(cfg.Phases) == 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	m := &Monitor{cfg: cfg, phases: make(map[string]*phaseTrack, len(cfg.Phases))}
	for name, ceiling := range cfg.Phases {
		m.phases[name] = &phaseTrack{ceiling: ceiling, ring: make([]time.Duration, cfg.SlowWindow)}
	}
	return m
}

// Observe folds one sample into the phase's windows and reports a
// transition: a *Breach when the phase just crossed into breach,
// (nil, true) when it just recovered, (nil, false) otherwise. Phases the
// config doesn't bound are ignored. Nil-safe.
func (m *Monitor) Observe(phase string, d time.Duration) (breach *Breach, recovered bool) {
	if m == nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.phases[phase]
	if t == nil {
		return nil, false
	}
	t.ring[t.next] = d
	t.next = (t.next + 1) % len(t.ring)
	if t.filled < len(t.ring) {
		t.filled++
	}
	if d > t.ceiling {
		t.violations++
	}
	fast, slow := m.burns(t)
	over := fast >= m.cfg.FastBurn && slow >= m.cfg.SlowBurn
	switch {
	case over && !t.breached:
		t.breached = true
		return &Breach{Phase: phase, Observed: d, Ceiling: t.ceiling, FastBurn: fast, SlowBurn: slow}, false
	case !over && t.breached:
		t.breached = false
		return nil, true
	}
	return nil, false
}

// burns computes the fast- and slow-window burn rates for a track under
// m.mu: violating samples in the window divided by the window's error
// budget (window size × objective). Denominators use the configured
// window size, not the filled count, so partially-filled windows can
// only under-report burn.
func (m *Monitor) burns(t *phaseTrack) (fast, slow float64) {
	fastViol, slowViol := 0, 0
	for i := 0; i < t.filled; i++ {
		// Walk backward from the most recent sample.
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if t.ring[idx] > t.ceiling {
			slowViol++
			if i < m.cfg.FastWindow {
				fastViol++
			}
		}
	}
	fast = float64(fastViol) / (float64(m.cfg.FastWindow) * m.cfg.Objective)
	slow = float64(slowViol) / (float64(m.cfg.SlowWindow) * m.cfg.Objective)
	return fast, slow
}

// Breached reports whether any phase is currently latched in breach,
// listing the breached phase names sorted. Nil-safe.
func (m *Monitor) Breached() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for name, t := range m.phases {
		if t.breached {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Status renders every tracked phase for /statusz, keyed by phase name.
// Percentiles are rebuilt from the slow window through obs.LatencySummary
// — the same nearest-rank math the load harness reports. Nil-safe.
func (m *Monitor) Status() map[string]PhaseStatus {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]PhaseStatus, len(m.phases))
	for name, t := range m.phases {
		var sum obs.LatencySummary
		for i := 0; i < t.filled; i++ {
			idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
			sum.Observe(t.ring[idx])
		}
		fast, slow := m.burns(t)
		out[name] = PhaseStatus{
			CeilingMs:  durMs(t.ceiling),
			Samples:    t.filled,
			P50Ms:      durMs(sum.Quantile(0.50)),
			P95Ms:      durMs(sum.Quantile(0.95)),
			P99Ms:      durMs(sum.Quantile(0.99)),
			FastBurn:   fast,
			SlowBurn:   slow,
			Violations: t.violations,
			Breached:   t.breached,
		}
	}
	return out
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
