package ops

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestEventLogJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC) }

	l.Emit(EventEpochSealed, 4, 0, map[string]any{"bidders": 16})
	l.Emit(EventEpochClosed, 4, 0xdeadbeef, nil)
	l.Emit(EventDraining, -1, 0, nil)

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3", len(lines))
	}
	var evs []Event
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("line %d seq = %d", i, ev.Seq)
		}
		if _, err := time.Parse(time.RFC3339Nano, ev.TS); err != nil {
			t.Fatalf("line %d timestamp %q: %v", i, ev.TS, err)
		}
		evs = append(evs, ev)
	}
	if evs[0].Type != EventEpochSealed || evs[0].Epoch != 4 || evs[0].Trace != "" {
		t.Fatalf("sealed event: %+v", evs[0])
	}
	if got := evs[0].Attrs["bidders"]; got != float64(16) {
		t.Fatalf("sealed attrs: %v", evs[0].Attrs)
	}
	if evs[1].Trace != "00000000deadbeef" {
		t.Fatalf("trace hex = %q, want fixed-width 16", evs[1].Trace)
	}
	if evs[2].Epoch != -1 {
		t.Fatalf("epoch-free event carries epoch %d", evs[2].Epoch)
	}
}

func TestEventLogRingBounded(t *testing.T) {
	l := NewEventLog(nil) // ring-only: no writer, /statusz still sees events
	for i := 0; i < DefaultEventKeep+8; i++ {
		l.Emit(EventEpochClosed, i, 0, nil)
	}
	recent := l.Recent()
	if len(recent) != DefaultEventKeep {
		t.Fatalf("ring holds %d, want %d", len(recent), DefaultEventKeep)
	}
	if recent[0].Epoch != 8 || recent[len(recent)-1].Epoch != DefaultEventKeep+7 {
		t.Fatalf("ring window wrong: first epoch %d last %d", recent[0].Epoch, recent[len(recent)-1].Epoch)
	}
	if l.Count() != uint64(DefaultEventKeep+8) {
		t.Fatalf("Count() = %d", l.Count())
	}
}

func TestNilEventLogIsInert(t *testing.T) {
	var l *EventLog
	if ev := l.Emit(EventSLOBreach, 1, 2, nil); ev.Seq != 0 || ev.Type != "" {
		t.Fatalf("nil log emitted %+v", ev)
	}
	if l.Recent() != nil || l.Count() != 0 {
		t.Fatal("nil log leaked state")
	}
}

// errWriter fails every write; Emit must swallow it.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, bytes.ErrTooLarge }

func TestEventLogSwallowsWriteErrors(t *testing.T) {
	l := NewEventLog(errWriter{})
	ev := l.Emit(EventEpochClosed, 1, 0, nil)
	if ev.Seq != 1 || len(l.Recent()) != 1 {
		t.Fatal("write error leaked into the log's own state")
	}
}
