package ops

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"lppa/internal/obs"
)

// Config wires a Plane to the rest of the observability stack. Every
// field is optional; the zero Config yields a plane that only tracks
// state for /statusz.
type Config struct {
	// Registry receives the plane's own metrics (lppa_ops_*); nil skips
	// metric export.
	Registry *obs.Registry
	// Events receives the structured JSONL event stream.
	Events *EventLog
	// SLO configures the burn-rate monitor; an empty Phases map disables
	// it.
	SLO SLOConfig
	// AnonymityFloor, when > 0, raises the alarm path whenever an
	// epoch's smallest anonymity set (per-tile when sharded, the whole
	// population otherwise) falls below it.
	AnonymityFloor int
	// Flight, when set, is force-dumped by the alarm path so the trace
	// ring around a breach lands on disk.
	Flight *obs.FlightRecorder
	// Sampler, when set, is drained by ObserveEpoch: a sampled epoch's
	// spans are pulled from the sampler's tracer and recorded into the
	// flight ring.
	Sampler *obs.TraceSampler
	// ProfileDir, when set, receives heap and goroutine pprof profiles
	// captured at each alarm transition.
	ProfileDir string
}

// ServiceStatus is what the epochal service's probe reports live.
type ServiceStatus struct {
	Epoch       int    `json:"epoch"` // epoch currently collecting intake
	IntakeDepth int    `json:"intake_depth"`
	Closed      bool   `json:"closed"`
	Admitted    uint64 `json:"admitted_total"`
	Rejected    uint64 `json:"rejected_total"`
}

// AnonPoint is one epoch's privacy-audit sample in the /statusz time
// series.
type AnonPoint struct {
	Epoch int     `json:"epoch"`
	Min   int     `json:"min"`
	Mean  float64 `json:"mean"`
}

// SamplerStatus reports the trace sampler's progress.
type SamplerStatus struct {
	Every   int    `json:"every"` // 1-in-K
	Sampled uint64 `json:"sampled_total"`
}

// Status is the /statusz document.
type Status struct {
	Healthy        bool                   `json:"healthy"`
	Unhealthy      []string               `json:"unhealthy_reasons,omitempty"`
	Ready          bool                   `json:"ready"`
	State          string                 `json:"state"`
	Service        *ServiceStatus         `json:"service,omitempty"`
	EpochsObserved uint64                 `json:"epochs_observed"`
	LastEpoch      int                    `json:"last_epoch"`
	LastAwardHash  string                 `json:"last_award_digest,omitempty"`
	LastTrace      string                 `json:"last_trace,omitempty"`
	Degraded       uint64                 `json:"degraded_epochs_total"`
	Sheds          uint64                 `json:"admission_sheds_total"`
	Sampler        *SamplerStatus         `json:"sampler,omitempty"`
	SLO            map[string]PhaseStatus `json:"slo,omitempty"`
	AnonymityFloor int                    `json:"anonymity_floor,omitempty"`
	Anonymity      []AnonPoint            `json:"anonymity,omitempty"`
	Events         []Event                `json:"recent_events,omitempty"`
}

// anonKeep bounds the /statusz anonymity time series.
const anonKeep = 64

// EpochObs is everything the epochal service reports about one finished
// epoch.
type EpochObs struct {
	Epoch    int
	Trace    obs.TraceID // sampled trace id (0 when the epoch was untraced)
	Bidders  int
	Excluded int // bidders dropped by quorum/straggler policy
	Err      string
	Wall     time.Duration
	// AwardDigest is the SHA-256 of the epoch's award transcript — the
	// same bytes the load harness hashes, so a live service and an
	// offline replay can be compared digest to digest.
	AwardDigest string
	// AnonMin/AnonMean summarize the epoch's anonymity sets: per-tile
	// when the round ran sharded, the admitted population otherwise.
	AnonMin  int
	AnonMean float64
}

// Plane is the live ops plane. All methods are safe for concurrent use
// and nil-safe: a nil *Plane is the disabled plane, so the service calls
// it unconditionally.
type Plane struct {
	cfg     Config
	monitor *Monitor

	mu           sync.Mutex
	probe        func() ServiceStatus
	state        string // "idle" → "running" → "draining" → "closed"
	epochs       uint64
	degraded     uint64
	sheds        uint64
	lastEpoch    int
	lastDigest   string
	lastTrace    obs.TraceID
	anon         []AnonPoint
	anonBreached bool
	alarmSeq     int
	shedLast     time.Time
	shedHeld     uint64
	now          func() time.Time

	// metric handles (nil when Config.Registry is nil)
	mEpochWall *obs.Histogram
	mBreaches  *obs.Counter
	mSheds     *obs.Counter
	mSampled   *obs.Counter
	mAnonMin   *obs.Gauge
	mAnonViol  *obs.Counter
	mDumps     *obs.Counter
}

// New builds a plane from cfg and registers its metrics. The new metric
// families carry # HELP text and unit-suffixed names per the Prometheus
// naming conventions.
func New(cfg Config) *Plane {
	p := &Plane{
		cfg:       cfg,
		monitor:   NewMonitor(cfg.SLO),
		state:     "idle",
		lastEpoch: -1,
		now:       time.Now,
	}
	if r := cfg.Registry; r != nil {
		p.mEpochWall = r.Histogram("lppa_ops_epoch_wall_seconds", nil)
		r.Help("lppa_ops_epoch_wall_seconds", "Wall-clock duration of each completed epoch's auction round.")
		p.mBreaches = r.Counter("lppa_ops_slo_breaches_total")
		r.Help("lppa_ops_slo_breaches_total", "SLO burn-rate breach transitions latched by the ops plane.")
		p.mSheds = r.Counter("lppa_ops_admission_sheds_total")
		r.Help("lppa_ops_admission_sheds_total", "Submissions shed by the admission gate, as seen by the ops plane.")
		p.mSampled = r.Counter("lppa_ops_sampled_traces_total")
		r.Help("lppa_ops_sampled_traces_total", "Epochs that carried full span tracing under the 1-in-K sampler.")
		p.mAnonMin = r.Gauge("lppa_ops_tile_anonymity_min_cells")
		r.Help("lppa_ops_tile_anonymity_min_cells", "Smallest anonymity set (bidders per tile) observed in the latest epoch.")
		p.mAnonViol = r.Counter("lppa_ops_anonymity_floor_violations_total")
		r.Help("lppa_ops_anonymity_floor_violations_total", "Epochs whose minimum anonymity set fell below the configured floor.")
		p.mDumps = r.Counter("lppa_ops_flight_dumps_total")
		r.Help("lppa_ops_flight_dumps_total", "Flight-recorder dumps forced by the ops alarm path.")
	}
	return p
}

// SetProbe installs the live service-state probe backing /statusz and
// flips the plane to running/ready. Nil-safe.
func (p *Plane) SetProbe(probe func() ServiceStatus) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.probe = probe
	if p.state == "idle" {
		p.state = "running"
	}
	p.mu.Unlock()
}

// NoteDraining flips readiness off and emits the drain event; the
// epochal service calls it when Close begins. Nil-safe.
func (p *Plane) NoteDraining() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.state == "draining" || p.state == "closed" {
		p.mu.Unlock()
		return
	}
	p.state = "draining"
	p.mu.Unlock()
	p.cfg.Events.Emit(EventDraining, -1, 0, nil)
}

// NoteClosed marks the drain complete. Nil-safe.
func (p *Plane) NoteClosed() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.state == "closed" {
		p.mu.Unlock()
		return
	}
	p.state = "closed"
	p.mu.Unlock()
	p.cfg.Events.Emit(EventClosed, -1, 0, nil)
}

// NoteSeal records an epoch's intake being sealed for execution.
// Nil-safe.
func (p *Plane) NoteSeal(epoch, bidders int) {
	if p == nil {
		return
	}
	p.cfg.Events.Emit(EventEpochSealed, epoch, 0, map[string]any{"bidders": bidders})
}

// shedThrottle coalesces admission_shed events: under overload the gate
// rejects thousands of submissions per second, and one event per
// rejection would drown the log the moment it matters most.
const shedThrottle = time.Second

// NoteShed records one admission rejection. Events are throttled to one
// per second with a coalesced count; the counter is exact. Nil-safe.
func (p *Plane) NoteShed(retryAfter time.Duration) {
	if p == nil {
		return
	}
	p.mSheds.Inc()
	p.mu.Lock()
	p.sheds++
	now := p.now()
	if !p.shedLast.IsZero() && now.Sub(p.shedLast) < shedThrottle {
		p.shedHeld++
		p.mu.Unlock()
		return
	}
	p.shedLast = now
	held := p.shedHeld
	p.shedHeld = 0
	epoch := -1
	if p.probe != nil {
		epoch = p.probe().Epoch
	}
	p.mu.Unlock()
	p.cfg.Events.Emit(EventAdmissionShed, epoch, 0, map[string]any{
		"retry_after_ms": durMs(retryAfter),
		"coalesced":      held,
	})
}

// ObservePhase folds one round-phase latency sample into the burn-rate
// monitor and fires the alarm path on a breach transition. The epochal
// service installs it as the round's phase observer. Nil-safe.
func (p *Plane) ObservePhase(epoch int, phase string, d time.Duration) {
	if p == nil {
		return
	}
	breach, recovered := p.monitor.Observe(phase, d)
	p.handleVerdict(epoch, phase, breach, recovered)
}

// handleVerdict routes a monitor transition to the event log and alarm
// path.
func (p *Plane) handleVerdict(epoch int, phase string, breach *Breach, recovered bool) {
	if breach != nil {
		p.mBreaches.Inc()
		p.alarm(EventSLOBreach, epoch, 0, map[string]any{
			"phase":       breach.Phase,
			"observed_ms": durMs(breach.Observed),
			"ceiling_ms":  durMs(breach.Ceiling),
			"fast_burn":   breach.FastBurn,
			"slow_burn":   breach.SlowBurn,
		})
	}
	if recovered {
		p.cfg.Events.Emit(EventSLORecovered, epoch, 0, map[string]any{"phase": phase})
	}
}

// ObserveEpoch folds one finished epoch into the plane: metrics, the
// anonymity time series and floor check, the "round" SLO window, the
// event log, and — for sampled epochs — the flight ring. Nil-safe.
func (p *Plane) ObserveEpoch(eo EpochObs) {
	if p == nil {
		return
	}
	p.mEpochWall.ObserveDuration(eo.Wall)
	if eo.AnonMin > 0 {
		p.mAnonMin.Set(int64(eo.AnonMin))
	}

	var spans []*obs.Span
	if eo.Trace != 0 && p.cfg.Sampler != nil {
		spans = p.cfg.Sampler.Tracer().TakeTrace(eo.Trace)
		if len(spans) > 0 {
			p.mSampled.Inc()
		}
	}

	p.mu.Lock()
	p.epochs++
	p.lastEpoch = eo.Epoch
	p.lastDigest = eo.AwardDigest
	p.lastTrace = eo.Trace
	if eo.Excluded > 0 || eo.Err != "" {
		p.degraded++
	}
	if eo.AnonMin > 0 {
		p.anon = append(p.anon, AnonPoint{Epoch: eo.Epoch, Min: eo.AnonMin, Mean: eo.AnonMean})
		if len(p.anon) > anonKeep {
			p.anon = p.anon[len(p.anon)-anonKeep:]
		}
	}
	floorViolated := p.cfg.AnonymityFloor > 0 && eo.AnonMin > 0 && eo.AnonMin < p.cfg.AnonymityFloor
	anonTransition := floorViolated && !p.anonBreached
	if p.cfg.AnonymityFloor > 0 && eo.AnonMin >= p.cfg.AnonymityFloor {
		p.anonBreached = false
	}
	if floorViolated {
		p.anonBreached = true
	}
	p.mu.Unlock()

	attrs := map[string]any{
		"bidders": eo.Bidders,
		"wall_ms": durMs(eo.Wall),
	}
	if eo.AwardDigest != "" {
		attrs["award_digest"] = eo.AwardDigest
	}
	if eo.AnonMin > 0 {
		attrs["anonymity_min"] = eo.AnonMin
		attrs["anonymity_mean"] = eo.AnonMean
	}
	if eo.Err != "" {
		attrs["error"] = eo.Err
	}
	if eo.Excluded > 0 {
		attrs["excluded"] = eo.Excluded
		p.cfg.Events.Emit(EventStragglerDrop, eo.Epoch, uint64(eo.Trace), map[string]any{"excluded": eo.Excluded})
	}
	p.cfg.Events.Emit(EventEpochClosed, eo.Epoch, uint64(eo.Trace), attrs)

	if len(spans) > 0 {
		// Sampled epochs land in the flight ring so the next dump —
		// trigger- or alarm-forced — carries real span context.
		_, _ = p.cfg.Flight.Record(&obs.RoundTrace{
			Label:    "epoch",
			Err:      eo.Err,
			Degraded: eo.Excluded > 0,
			Epoch:    eo.Epoch,
			HasEpoch: true,
			Duration: eo.Wall,
			Spans:    spans,
		})
	}

	if floorViolated {
		p.mAnonViol.Inc()
		if anonTransition {
			p.alarm(EventAnonymityFloor, eo.Epoch, uint64(eo.Trace), map[string]any{
				"anonymity_min": eo.AnonMin,
				"floor":         p.cfg.AnonymityFloor,
			})
		}
	}

	// The whole-epoch wall time runs through the same monitor as the
	// intra-round phases, under the "round" phase the LOAD_*.json SLO
	// block bounds.
	breach, recovered := p.monitor.Observe("round", eo.Wall)
	p.handleVerdict(eo.Epoch, "round", breach, recovered)
}

// alarm is the shared breach path: emit the event, force a flight dump,
// and capture pprof profiles when configured.
func (p *Plane) alarm(typ string, epoch int, trace uint64, attrs map[string]any) {
	p.cfg.Events.Emit(typ, epoch, trace, attrs)
	p.mu.Lock()
	p.alarmSeq++
	seq := p.alarmSeq
	p.mu.Unlock()
	if p.cfg.Flight != nil {
		if path, err := p.cfg.Flight.Dump(typ, epoch); err == nil && path != "" {
			p.mDumps.Inc()
			p.cfg.Events.Emit(EventFlightDump, epoch, trace, map[string]any{"path": path, "cause": typ})
		}
	}
	if p.cfg.ProfileDir != "" {
		p.captureProfiles(epoch, seq)
	}
}

// captureProfiles writes heap and goroutine profiles next to the flight
// dumps; failures are swallowed (telemetry never takes the service
// down).
func (p *Plane) captureProfiles(epoch, seq int) {
	if err := os.MkdirAll(p.cfg.ProfileDir, 0o755); err != nil {
		return
	}
	for _, kind := range []string{"heap", "goroutine"} {
		prof := pprof.Lookup(kind)
		if prof == nil {
			continue
		}
		name := fmt.Sprintf("breach-e%d-%03d-%s.pprof", epoch, seq, kind)
		f, err := os.Create(filepath.Join(p.cfg.ProfileDir, name))
		if err != nil {
			continue
		}
		_ = prof.WriteTo(f, 0)
		_ = f.Close()
	}
}

// Healthy reports liveness: no phase latched in SLO breach and no
// standing anonymity-floor violation. Nil-safe (a nil plane is healthy).
func (p *Plane) Healthy() (bool, []string) {
	if p == nil {
		return true, nil
	}
	var reasons []string
	for _, phase := range p.monitor.Breached() {
		reasons = append(reasons, fmt.Sprintf("slo_breach:%s", phase))
	}
	p.mu.Lock()
	if p.anonBreached {
		reasons = append(reasons, "anonymity_floor_violated")
	}
	p.mu.Unlock()
	return len(reasons) == 0, reasons
}

// Ready reports readiness: a probe is installed and the service is not
// draining or closed. Nil-safe (a nil plane is not ready).
func (p *Plane) Ready() (bool, string) {
	if p == nil {
		return false, "no ops plane"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.state {
	case "running":
		return true, "ready"
	case "idle":
		return false, "not started"
	default:
		return false, p.state
	}
}

// Events exposes the plane's event log (nil when the plane — or its
// log — is nil), so callers can inspect the recent-event ring without
// going through /statusz.
func (p *Plane) Events() *EventLog {
	if p == nil {
		return nil
	}
	return p.cfg.Events
}

// Status assembles the /statusz document. Nil-safe (zero Status).
func (p *Plane) Status() Status {
	if p == nil {
		return Status{}
	}
	healthy, reasons := p.Healthy()
	ready, _ := p.Ready()
	st := Status{
		Healthy:        healthy,
		Unhealthy:      reasons,
		Ready:          ready,
		SLO:            p.monitor.Status(),
		AnonymityFloor: p.cfg.AnonymityFloor,
		Events:         p.cfg.Events.Recent(),
	}
	if s := p.cfg.Sampler; s != nil {
		st.Sampler = &SamplerStatus{Every: s.Every(), Sampled: s.Sampled()}
	}
	p.mu.Lock()
	st.State = p.state
	st.EpochsObserved = p.epochs
	st.LastEpoch = p.lastEpoch
	st.LastAwardHash = p.lastDigest
	if p.lastTrace != 0 {
		st.LastTrace = hexTrace(uint64(p.lastTrace))
	}
	st.Degraded = p.degraded
	st.Sheds = p.sheds
	st.Anonymity = append([]AnonPoint(nil), p.anon...)
	probe := p.probe
	p.mu.Unlock()
	if probe != nil {
		s := probe()
		st.Service = &s
	}
	return st
}

// Routes registers /healthz, /readyz, and /statusz on mux — the same
// mux that serves /metrics, so one listener covers probes, scrapes, and
// humans. Nil-safe (registers nothing).
func (p *Plane) Routes(mux *http.ServeMux) {
	if p == nil || mux == nil {
		return
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ok, reasons := p.Healthy(); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, r := range reasons {
				fmt.Fprintln(w, r)
			}
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ok, state := p.Ready()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, state)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.Status())
	})
}
