package ops

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lppa/internal/obs"
)

func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// TestPlaneLifecycleEndpoints walks the state machine through the three
// probe endpoints: not started → running → draining → closed, with
// readiness flipping exactly where Kubernetes-style probes expect it to.
func TestPlaneLifecycleEndpoints(t *testing.T) {
	p := New(Config{Events: NewEventLog(nil)})
	mux := http.NewServeMux()
	p.Routes(mux)

	if code, body := get(t, mux, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "not started") {
		t.Fatalf("idle readyz: %d %q", code, body)
	}
	if code, body := get(t, mux, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("idle healthz: %d %q", code, body)
	}

	p.SetProbe(func() ServiceStatus {
		return ServiceStatus{Epoch: 3, IntakeDepth: 5, Admitted: 40, Rejected: 2}
	})
	if code, _ := get(t, mux, "/readyz"); code != http.StatusOK {
		t.Fatalf("running readyz: %d", code)
	}

	code, body := get(t, mux, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz not JSON: %v\n%s", err, body)
	}
	if !st.Ready || st.State != "running" || st.Service == nil || st.Service.Epoch != 3 || st.Service.Admitted != 40 {
		t.Fatalf("statusz document: %+v", st)
	}

	p.NoteDraining()
	if code, body := get(t, mux, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining readyz: %d %q", code, body)
	}
	p.NoteClosed()
	p.NoteClosed() // idempotent
	if code, body := get(t, mux, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "closed") {
		t.Fatalf("closed readyz: %d %q", code, body)
	}
	evs := p.cfg.Events.Recent()
	var types []string
	for _, ev := range evs {
		types = append(types, ev.Type)
	}
	if want := []string{EventDraining, EventClosed}; strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("lifecycle events = %v, want %v", types, want)
	}
}

// TestPlaneSLOBreachAlarm drives the full alarm path: a violating phase
// sample latches the monitor, flips /healthz to 503, emits slo_breach,
// force-dumps the flight ring, bumps the breach counter, and captures
// pprof profiles. Recovery emits slo_recovered and clears /healthz.
func TestPlaneSLOBreachAlarm(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(filepath.Join(dir, "flight"), 4, 0)
	p := New(Config{
		Registry: reg,
		Events:   NewEventLog(nil),
		SLO: SLOConfig{
			Phases:     map[string]time.Duration{"allocate": 5 * time.Millisecond},
			FastWindow: 4, SlowWindow: 8, // one violation trips (25x / 12.5x burn)
		},
		Flight:     fr,
		ProfileDir: filepath.Join(dir, "profiles"),
	})
	mux := http.NewServeMux()
	p.Routes(mux)
	p.SetProbe(func() ServiceStatus { return ServiceStatus{} })

	p.ObservePhase(7, "allocate", time.Millisecond)
	if code, _ := get(t, mux, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthy plane returned %d", code)
	}

	p.ObservePhase(7, "allocate", 80*time.Millisecond)
	code, body := get(t, mux, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "slo_breach:allocate") {
		t.Fatalf("breached healthz: %d %q", code, body)
	}

	var breach, dump bool
	for _, ev := range p.cfg.Events.Recent() {
		switch ev.Type {
		case EventSLOBreach:
			breach = true
			if ev.Epoch != 7 || ev.Attrs["phase"] != "allocate" {
				t.Fatalf("breach event: %+v", ev)
			}
		case EventFlightDump:
			dump = true
			path, _ := ev.Attrs["path"].(string)
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("flight dump path %q: %v", path, err)
			}
			if !strings.Contains(filepath.Base(path), "flight-e7-") {
				t.Fatalf("dump not epoch-tagged: %q", path)
			}
		}
	}
	if !breach || !dump {
		t.Fatalf("missing alarm events (breach=%v dump=%v): %+v", breach, dump, p.cfg.Events.Recent())
	}
	profiles, _ := filepath.Glob(filepath.Join(dir, "profiles", "breach-e7-*.pprof"))
	if len(profiles) == 0 {
		t.Fatal("no pprof profiles captured at the alarm")
	}

	// Recovery: good samples roll the violation out of the slow window.
	for i := 0; i < 10; i++ {
		p.ObservePhase(8, "allocate", time.Millisecond)
	}
	if code, _ := get(t, mux, "/healthz"); code != http.StatusOK {
		t.Fatal("healthz stayed 503 after recovery")
	}
	recovered := false
	for _, ev := range p.cfg.Events.Recent() {
		if ev.Type == EventSLORecovered {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no slo_recovered event")
	}
}

// TestPlaneObserveEpoch pins the epoch fold: sampled spans drain from the
// sampler's tracer into the flight ring, the event log gets epoch_closed
// (plus straggler_excluded when bidders were dropped), and /statusz
// carries the digest, trace id, and anonymity series.
func TestPlaneObserveEpoch(t *testing.T) {
	sampler := obs.NewTraceSampler("svc", 1, 1) // sample everything
	fr := obs.NewFlightRecorder(t.TempDir(), 4, 0)
	p := New(Config{Events: NewEventLog(nil), Sampler: sampler, Flight: fr})

	tr, _, sampled := sampler.Next()
	if !sampled {
		t.Fatal("k=1 sampler skipped")
	}
	root := tr.StartTrace("round")
	root.End()
	trace := root.Ctx.Trace

	p.ObserveEpoch(EpochObs{
		Epoch: 12, Trace: trace, Bidders: 20, Excluded: 3,
		Wall: 2 * time.Millisecond, AwardDigest: "abc123", AnonMin: 4, AnonMean: 6.5,
	})

	if fr.Buffered() != 1 {
		t.Fatalf("flight ring holds %d traces, want the sampled epoch", fr.Buffered())
	}
	var closed, straggler bool
	for _, ev := range p.cfg.Events.Recent() {
		switch ev.Type {
		case EventEpochClosed:
			closed = true
			if ev.Epoch != 12 || ev.Trace == "" || ev.Attrs["award_digest"] != "abc123" {
				t.Fatalf("epoch_closed event: %+v", ev)
			}
		case EventStragglerDrop:
			straggler = true
			if ev.Attrs["excluded"] != float64(3) && ev.Attrs["excluded"] != 3 {
				t.Fatalf("straggler event: %+v", ev)
			}
		}
	}
	if !closed || !straggler {
		t.Fatalf("missing epoch events: closed=%v straggler=%v", closed, straggler)
	}

	st := p.Status()
	if st.EpochsObserved != 1 || st.LastEpoch != 12 || st.LastAwardHash != "abc123" || st.LastTrace == "" {
		t.Fatalf("status after epoch: %+v", st)
	}
	if st.Degraded != 1 {
		t.Fatalf("degraded = %d", st.Degraded)
	}
	if len(st.Anonymity) != 1 || st.Anonymity[0].Min != 4 || st.Anonymity[0].Mean != 6.5 {
		t.Fatalf("anonymity series: %+v", st.Anonymity)
	}
	if st.Sampler == nil || st.Sampler.Every != 1 || st.Sampler.Sampled != 1 {
		t.Fatalf("sampler status: %+v", st.Sampler)
	}
}

// TestPlaneAnonymityFloor pins the privacy alarm: an epoch whose smallest
// anonymity set dips under the floor flips /healthz and emits exactly one
// anonymity_floor_violated per excursion; a clean epoch re-arms it.
func TestPlaneAnonymityFloor(t *testing.T) {
	p := New(Config{Events: NewEventLog(nil), AnonymityFloor: 5})

	p.ObserveEpoch(EpochObs{Epoch: 1, AnonMin: 8, AnonMean: 9})
	if ok, _ := p.Healthy(); !ok {
		t.Fatal("floor satisfied but unhealthy")
	}

	p.ObserveEpoch(EpochObs{Epoch: 2, AnonMin: 3, AnonMean: 4})
	ok, reasons := p.Healthy()
	if ok || len(reasons) != 1 || reasons[0] != "anonymity_floor_violated" {
		t.Fatalf("floor violation not reported: %v %v", ok, reasons)
	}
	p.ObserveEpoch(EpochObs{Epoch: 3, AnonMin: 2, AnonMean: 2}) // still under: latched, no second alarm
	count := 0
	for _, ev := range p.cfg.Events.Recent() {
		if ev.Type == EventAnonymityFloor {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d anonymity alarms for one excursion", count)
	}

	p.ObserveEpoch(EpochObs{Epoch: 4, AnonMin: 7, AnonMean: 8})
	if ok, _ := p.Healthy(); !ok {
		t.Fatal("floor restored but still unhealthy")
	}
}

// TestPlaneShedThrottle pins event coalescing under overload: the counter
// is exact, but at most one admission_shed event per second lands in the
// log, carrying the coalesced count.
func TestPlaneShedThrottle(t *testing.T) {
	p := New(Config{Events: NewEventLog(nil)})
	now := time.Unix(1000, 0)
	p.now = func() time.Time { return now }

	for i := 0; i < 100; i++ {
		p.NoteShed(time.Second)
	}
	now = now.Add(2 * time.Second)
	p.NoteShed(time.Second)

	var sheds []Event
	for _, ev := range p.cfg.Events.Recent() {
		if ev.Type == EventAdmissionShed {
			sheds = append(sheds, ev)
		}
	}
	if len(sheds) != 2 {
		t.Fatalf("%d shed events for 101 sheds, want 2 (throttled)", len(sheds))
	}
	if got := sheds[1].Attrs["coalesced"]; got != float64(99) && got != uint64(99) {
		t.Fatalf("coalesced = %v, want 99", got)
	}
	if p.Status().Sheds != 101 {
		t.Fatalf("exact shed count = %d", p.Status().Sheds)
	}
}

// TestNilPlaneIsInert: every Plane method on nil is a free no-op — the
// epochal service calls them unconditionally.
func TestNilPlaneIsInert(t *testing.T) {
	var p *Plane
	p.SetProbe(nil)
	p.NoteDraining()
	p.NoteClosed()
	p.NoteSeal(1, 2)
	p.NoteShed(time.Second)
	p.ObservePhase(1, "round", time.Second)
	p.ObserveEpoch(EpochObs{Epoch: 1})
	p.Routes(http.NewServeMux())
	p.Routes(nil)
	if ok, _ := p.Healthy(); !ok {
		t.Fatal("nil plane unhealthy")
	}
	if ok, _ := p.Ready(); ok {
		t.Fatal("nil plane ready")
	}
	if st := p.Status(); st.EpochsObserved != 0 {
		t.Fatal("nil plane has state")
	}
}
