// Package ops is the service-level telemetry plane for the epochal
// auction service: liveness/readiness/status HTTP endpoints backed by a
// service probe, an in-process SLO burn-rate monitor over the rolling
// per-phase latency windows, a structured JSONL event log correlated by
// epoch number and trace ID, and a per-epoch privacy-audit time series
// with a configurable anonymity floor. The metric/trace substrate in
// internal/obs records what happened; this package decides whether the
// running service is healthy and says so — over HTTP for probes and
// scrapers, and as events for humans reading the log after the fact.
//
// Like internal/obs, the package follows the nil no-op contract: a nil
// *Plane, *EventLog, or *Monitor is valid and free, so the epochal
// service is instrumented unconditionally and pays nothing when no plane
// is configured.
package ops

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event types emitted by the plane. The set is closed on purpose: a
// consumer switching on type should be able to enumerate every case.
const (
	EventEpochSealed    = "epoch_sealed"     // an intake batch was sealed for execution
	EventEpochClosed    = "epoch_closed"     // an epoch's round completed (awards final)
	EventAdmissionShed  = "admission_shed"   // the admission gate rejected submissions
	EventStragglerDrop  = "straggler_excluded" // bidders were excluded by quorum/straggler policy
	EventSLOBreach      = "slo_breach"       // the burn-rate monitor latched a breach
	EventSLORecovered   = "slo_recovered"    // burn rates fell back under thresholds
	EventAnonymityFloor = "anonymity_floor_violated" // an epoch's min anonymity set fell below the floor
	EventFlightDump     = "flight_dump"      // the alarm path forced a flight-recorder dump
	EventDraining       = "service_draining" // Close began; readiness flipped off
	EventClosed         = "service_closed"   // drain finished; the service is down
)

// Event is one line of the ops event log. Epoch is -1 for events not
// tied to an epoch; Trace is the hex trace ID of the epoch's sampled
// trace ("" when the epoch was not sampled). Attrs carries the
// type-specific payload; encoding/json sorts map keys, so a given event
// marshals deterministically.
type Event struct {
	Seq   uint64         `json:"seq"`
	TS    string         `json:"ts"`
	Type  string         `json:"type"`
	Epoch int            `json:"epoch"`
	Trace string         `json:"trace,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// EventLog writes events as JSON lines and retains the most recent few
// for /statusz. Safe for concurrent Emit; the nil *EventLog discards
// everything.
type EventLog struct {
	mu   sync.Mutex
	w    io.Writer // may be nil: ring-only log
	seq  uint64
	ring []Event
	keep int
	now  func() time.Time
}

// DefaultEventKeep is how many recent events /statusz shows.
const DefaultEventKeep = 32

// NewEventLog returns a log appending JSONL to w (nil keeps only the
// in-memory ring for /statusz).
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w, keep: DefaultEventKeep, now: time.Now}
}

// Emit appends one event. epoch < 0 means "not tied to an epoch"; trace
// 0 omits the trace field. Write errors are swallowed: telemetry must
// never take the auction down. Nil-safe.
func (l *EventLog) Emit(typ string, epoch int, trace uint64, attrs map[string]any) Event {
	if l == nil {
		return Event{}
	}
	l.mu.Lock()
	l.seq++
	ev := Event{
		Seq:   l.seq,
		TS:    l.now().UTC().Format(time.RFC3339Nano),
		Type:  typ,
		Epoch: epoch,
		Attrs: attrs,
	}
	if trace != 0 {
		ev.Trace = hexTrace(trace)
	}
	l.ring = append(l.ring, ev)
	if len(l.ring) > l.keep {
		l.ring = l.ring[len(l.ring)-l.keep:]
	}
	if l.w != nil {
		if b, err := json.Marshal(ev); err == nil {
			b = append(b, '\n')
			_, _ = l.w.Write(b)
		}
	}
	l.mu.Unlock()
	return ev
}

// Recent returns the retained events, oldest first. Nil-safe.
func (l *EventLog) Recent() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.ring...)
}

// Count returns how many events have been emitted. Nil-safe.
func (l *EventLog) Count() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// hexTrace renders a trace ID the way the Chrome trace exporter does:
// lowercase hex, no leading zeros stripped ambiguity — fixed width 16.
func hexTrace(id uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}
