package audit_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
	"lppa/internal/obs/audit"
	"lppa/internal/round"
)

func fixture(t *testing.T, n int, seed int64) (core.Params, *mask.KeyRing, []geo.Point, [][]uint64) {
	t.Helper()
	p := core.Params{Channels: 6, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("audit"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	points := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			if rng.Intn(4) > 0 {
				bids[i][r] = uint64(rng.Intn(int(p.BMax))) + 1
			}
		}
	}
	return p, ring, points, bids
}

func testArea(t *testing.T) *dataset.Area {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Grid:     geo.Grid{Rows: 25, Cols: 25, SideMeters: 75_000},
		Channels: 16,
		Profiles: dataset.LAProfiles(),
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Areas[3]
}

// TestRoundAuditFullAttendance pins the audit surface of a clean observed
// round: every bidder carries a positive digest count, the degree
// histogram covers the population, per-channel comparison counts are
// present, and the robust-BCM anonymity sets are non-empty.
func TestRoundAuditFullAttendance(t *testing.T) {
	const n = 12
	p, ring, pts, bids := fixture(t, n, 7)
	reg := obs.NewRegistry()
	res, err := round.Run(p, ring,
		round.Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 0.6, Decay: 0.9}, Rng: rand.New(rand.NewSource(7))},
		round.WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Round(res, audit.Options{Area: testArea(t), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bidders != n || rep.Channels != int(p.Channels) {
		t.Fatalf("report shape = %d bidders/%d channels, want %d/%d",
			rep.Bidders, rep.Channels, n, p.Channels)
	}
	if len(rep.PerBidder) != n {
		t.Fatalf("per-bidder entries = %d, want %d", len(rep.PerBidder), n)
	}
	total, degSum := 0, 0
	for i, b := range rep.PerBidder {
		if b.Bidder != i {
			t.Errorf("entry %d audits bidder %d, want identity mapping", i, b.Bidder)
		}
		if b.Digests <= 0 {
			t.Errorf("bidder %d: %d digests, want positive", i, b.Digests)
		}
		if b.AnonymityCells < 1 {
			t.Errorf("bidder %d: anonymity set %d cells, want >= 1", i, b.AnonymityCells)
		}
		if b.Satisfied > b.ObservedChannels {
			t.Errorf("bidder %d: satisfied %d > observed %d", i, b.Satisfied, b.ObservedChannels)
		}
		total += b.Digests
	}
	if rep.DigestsTotal != total {
		t.Errorf("DigestsTotal = %d, want %d", rep.DigestsTotal, total)
	}
	for _, c := range rep.DegreeHist {
		degSum += c
	}
	if degSum != n {
		t.Errorf("degree histogram covers %d bidders, want %d", degSum, n)
	}
	if len(rep.ComparisonsPerChannel) != int(p.Channels) {
		t.Fatalf("comparisons for %d channels, want %d", len(rep.ComparisonsPerChannel), p.Channels)
	}
	var comparisons uint64
	for _, c := range rep.ComparisonsPerChannel {
		comparisons += c
	}
	if comparisons == 0 {
		t.Error("observed round recorded zero masked comparisons")
	}
	if rep.MinAnonymityCells < 1 || rep.MeanAnonymityCells < float64(rep.MinAnonymityCells) {
		t.Errorf("anonymity summary min=%d mean=%f inconsistent",
			rep.MinAnonymityCells, rep.MeanAnonymityCells)
	}
	if s := rep.Summary(); !strings.Contains(s, "anonymity") {
		t.Errorf("summary lacks anonymity line:\n%s", s)
	}
}

// TestRoundAuditSurfaceOnly pins the Area-less mode: digest counts and
// degrees are reported, anonymity fields stay zero, and an unobserved
// round carries no comparison counts.
func TestRoundAuditSurfaceOnly(t *testing.T) {
	p, ring, pts, bids := fixture(t, 8, 3)
	res, err := round.Run(p, ring,
		round.Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Round(res, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ComparisonsPerChannel != nil {
		t.Errorf("unobserved round reported comparisons %v", rep.ComparisonsPerChannel)
	}
	if rep.MinAnonymityCells != 0 || rep.MeanAnonymityCells != 0 {
		t.Errorf("surface-only report carries anonymity summary %d/%f",
			rep.MinAnonymityCells, rep.MeanAnonymityCells)
	}
	for _, b := range rep.PerBidder {
		if b.AnonymityCells != 0 {
			t.Errorf("bidder %d: anonymity %d without an area", b.Bidder, b.AnonymityCells)
		}
	}
}

// TestRoundAuditDegradedRound pins the compacted-index mapping: the
// excluded bidder carries no entry and every kept entry is keyed by its
// original population id.
func TestRoundAuditDegradedRound(t *testing.T) {
	const n, bad = 10, 4
	p, ring, pts, bids := fixture(t, n, 9)
	pts[bad] = geo.Point{X: p.MaxX + 1, Y: 0}
	res, err := round.Run(p, ring,
		round.Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(9))},
		round.WithWorkers(2), round.WithQuorum(n-1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Excluded) != 1 || res.Excluded[0] != bad {
		t.Fatalf("Excluded = %v, want [%d]", res.Excluded, bad)
	}
	rep, err := audit.Round(res, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bidders != n-1 || len(rep.PerBidder) != n-1 {
		t.Fatalf("audited %d/%d bidders, want %d", rep.Bidders, len(rep.PerBidder), n-1)
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != bad {
		t.Fatalf("report Excluded = %v, want [%d]", rep.Excluded, bad)
	}
	want := 0
	for _, b := range rep.PerBidder {
		if want == bad {
			want++
		}
		if b.Bidder != want {
			t.Fatalf("per-bidder ids = %v..., want original ids skipping %d", b.Bidder, bad)
		}
		want++
	}
}

// TestRoundAuditShardedTiles pins the sharded-round audit surface: the
// report carries each tile's resident population as the routing-leakage
// anonymity set, the sets sum to the audited population, the min/mean
// summary is consistent, and the Summary mentions tiles. An unsharded
// round carries none of it (covered by TestRoundAuditSurfaceOnly's zero
// checks plus the omitempty tags).
func TestRoundAuditShardedTiles(t *testing.T) {
	const n = 24
	p, ring, pts, bids := fixture(t, n, 13)
	res, err := round.Run(p, ring,
		round.Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(13))},
		round.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Round(res, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tiles == 0 || len(rep.TileAnonymitySets) != rep.Tiles {
		t.Fatalf("tiles = %d with %d anonymity sets, want matching positive counts",
			rep.Tiles, len(rep.TileAnonymitySets))
	}
	sum, min := 0, rep.TileAnonymitySets[0]
	for _, s := range rep.TileAnonymitySets {
		if s <= 0 {
			t.Errorf("tile anonymity set %d not positive", s)
		}
		if s < min {
			min = s
		}
		sum += s
	}
	if sum != n {
		t.Errorf("tile anonymity sets sum to %d, want %d", sum, n)
	}
	if rep.MinTileAnonymity != min {
		t.Errorf("MinTileAnonymity = %d, want %d", rep.MinTileAnonymity, min)
	}
	if want := float64(sum) / float64(rep.Tiles); rep.MeanTileAnonymity != want {
		t.Errorf("MeanTileAnonymity = %f, want %f", rep.MeanTileAnonymity, want)
	}
	if s := rep.Summary(); !strings.Contains(s, "tile") {
		t.Errorf("summary lacks tile line:\n%s", s)
	}

	unsharded, err := round.Run(p, ring,
		round.Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(13))})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := audit.Round(unsharded, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Tiles != 0 || plain.TileAnonymitySets != nil {
		t.Errorf("unsharded report carries tile fields: %d/%v", plain.Tiles, plain.TileAnonymitySets)
	}
}

// TestRoundAuditMetricsFold pins the transport-counter folding: replay and
// reject counters land in the report summed across label sets.
func TestRoundAuditMetricsFold(t *testing.T) {
	p, ring, pts, bids := fixture(t, 6, 5)
	reg := obs.NewRegistry()
	reg.Counter("lppa_transport_replays_deduped_total", obs.L("role", "auctioneer")).Add(3)
	reg.Counter("lppa_transport_replays_deduped_total", obs.L("role", "ttp")).Add(2)
	reg.Counter("lppa_transport_frames_rejected_total", obs.L("role", "auctioneer")).Inc()
	res, err := round.Run(p, ring,
		round.Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Round(res, audit.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplaysDeduped != 5 || rep.FramesRejected != 1 {
		t.Errorf("folded counters = %d replays/%d rejects, want 5/1",
			rep.ReplaysDeduped, rep.FramesRejected)
	}
}

// TestReportWriteJSON pins the artifact format: the written file is valid
// JSON that round-trips the per-bidder table.
func TestReportWriteJSON(t *testing.T) {
	p, ring, pts, bids := fixture(t, 6, 2)
	res, err := round.Run(p, ring,
		round.Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Round(res, audit.Options{Area: testArea(t)})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "AUDIT_ROUND.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back audit.Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(back.PerBidder) != len(rep.PerBidder) || back.DigestsTotal != rep.DigestsTotal {
		t.Errorf("round-trip lost data: %d/%d bidders, %d/%d digests",
			len(back.PerBidder), len(rep.PerBidder), back.DigestsTotal, rep.DigestsTotal)
	}
}

// TestRoundAuditRejectsShortArea pins the channel-count validation.
func TestRoundAuditRejectsShortArea(t *testing.T) {
	p, ring, pts, bids := fixture(t, 4, 1)
	res, err := round.Run(p, ring,
		round.Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Config{
		Grid:     geo.Grid{Rows: 10, Cols: 10, SideMeters: 75_000},
		Channels: 2,
		Profiles: dataset.LAProfiles(),
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := audit.Round(res, audit.Options{Area: ds.Areas[0]}); err == nil {
		t.Fatal("area with too few channels accepted")
	}
}
