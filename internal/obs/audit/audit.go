// Package audit tallies the auctioneer-observable surface of one private
// round into a leakage report: how many masked digests each bidder
// exposed, how much ordering work each channel column cost, and — when a
// ground-truth coverage area is supplied — how small the paper's
// section VI.C transcript attacker can squeeze each bidder's anonymity
// set. The report is what `make audit-snapshot` serialises as
// AUDIT_ROUND.json.
//
// The auditor only reads what the auctioneer already holds (the round
// transcript) plus public coverage data; it never touches plaintext
// locations or bids, so a report can be produced by the auctioneer
// itself without weakening the protocol.
package audit

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"lppa/internal/attack"
	"lppa/internal/dataset"
	"lppa/internal/obs"
	"lppa/internal/round"
)

// BidderAudit is the per-bidder leakage tally.
type BidderAudit struct {
	// Bidder is the original population index (pre-quorum-compaction).
	Bidder int `json:"bidder"`
	// Digests counts the masked digests this bidder handed the
	// auctioneer: location families and range covers plus every channel
	// bid's family and cover.
	Digests int `json:"digests"`
	// ConflictDegree is the bidder's degree in the masked conflict graph
	// — how many other bidders the auctioneer learned it interferes with.
	ConflictDegree int `json:"conflict_degree"`
	// ObservedChannels is how many channels the top-fraction transcript
	// attacker presumes available to this bidder.
	ObservedChannels int `json:"observed_channels"`
	// AnonymityCells is the size of the attacker's best-guess region for
	// this bidder under the robust BCM attack — the anonymity-set size in
	// grid cells. Zero when no coverage area was supplied (BCM always
	// returns at least one cell, so zero is unambiguous).
	AnonymityCells int `json:"anonymity_cells,omitempty"`
	// Satisfied is how many of the observed channels the attacker's
	// chosen cells actually satisfy; ObservedChannels−Satisfied is the
	// attacker-visible evidence of disguised-zero poisoning.
	Satisfied int `json:"satisfied,omitempty"`
}

// Report is the per-round privacy-leakage audit.
type Report struct {
	// Bidders is the audited (non-excluded) population size.
	Bidders int `json:"bidders"`
	// Channels is the number of auctioned channels.
	Channels int `json:"channels"`
	// Excluded lists original indices dropped from a degraded quorum
	// round; they submitted nothing the auctioneer kept, so they carry no
	// per-bidder entry.
	Excluded []int `json:"excluded,omitempty"`
	// DigestsTotal sums Digests over all audited bidders.
	DigestsTotal int `json:"digests_total"`
	// ComparisonsPerChannel is the masked-intersection count the rank
	// build spent per channel column — an upper bound on the ordering
	// information each column leaked. Present only when the round ran
	// with an observer (round.WithObserver); nil otherwise.
	ComparisonsPerChannel []uint64 `json:"comparisons_per_channel,omitempty"`
	// DegreeHist[d] counts bidders with conflict degree d.
	DegreeHist []int `json:"degree_hist"`
	// KeepFraction is the top-fraction the modelled attacker keeps per
	// channel ranking.
	KeepFraction float64 `json:"keep_fraction"`
	// MinAnonymityCells and MeanAnonymityCells summarise AnonymityCells
	// across bidders; zero when no coverage area was supplied.
	MinAnonymityCells  int     `json:"min_anonymity_cells,omitempty"`
	MeanAnonymityCells float64 `json:"mean_anonymity_cells,omitempty"`
	// Tiles and TileAnonymitySets describe the sharded planner's routing
	// leakage: a sharded round tells the auctioneer which coarse tile each
	// bidder occupies (by masked digest), so the effective location
	// anonymity set of a bidder is its tile's resident population.
	// TileAnonymitySets[s] is the resident count of shard s; Min/Mean
	// summarise it. All zero/absent for unsharded rounds.
	Tiles             int     `json:"tiles,omitempty"`
	TileAnonymitySets []int   `json:"tile_anonymity_sets,omitempty"`
	MinTileAnonymity  int     `json:"min_tile_anonymity,omitempty"`
	MeanTileAnonymity float64 `json:"mean_tile_anonymity,omitempty"`
	// ReplaysDeduped and FramesRejected fold in the transport's replay
	// and reject counters when a metrics registry is supplied: duplicate
	// or malformed submissions are an attacker-visible event class.
	ReplaysDeduped uint64 `json:"replays_deduped"`
	FramesRejected uint64 `json:"frames_rejected"`
	// PerBidder is keyed by original bidder index, ascending.
	PerBidder []BidderAudit `json:"per_bidder"`
}

// Options configures the audit.
type Options struct {
	// Area is the ground-truth coverage dataset the modelled attacker
	// holds. When nil the report is surface-only: digest counts, conflict
	// degrees, and comparison counts, but no anonymity sets.
	Area *dataset.Area
	// KeepFraction is the fraction of each channel ranking the attacker
	// keeps as "available" (default 0.5, the paper's strongest practical
	// setting).
	KeepFraction float64
	// Metrics, when non-nil, contributes the transport replay/reject
	// counters to the report.
	Metrics *obs.Registry
}

// Round audits one completed private round.
func Round(res *round.Result, opts Options) (*Report, error) {
	if res == nil || res.Auctioneer == nil {
		return nil, fmt.Errorf("audit: round result carries no auctioneer transcript")
	}
	keep := opts.KeepFraction
	if keep == 0 {
		keep = 0.5
	}
	auc := res.Auctioneer
	n := auc.N()
	rankings := auc.Rankings()
	if opts.Area != nil && opts.Area.NumChannels() < len(rankings) {
		return nil, fmt.Errorf("audit: area has %d channels, round ranked %d",
			opts.Area.NumChannels(), len(rankings))
	}

	// Compacted transcript index → original population index: the kept
	// bidders are exactly the non-excluded ids, ascending.
	origID := originalIDs(n, res.Excluded)

	digests := auc.DigestCounts()
	graph := auc.ConflictGraph()
	observed, err := attack.TopFractionChannels(rankings, n, keep)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}

	rep := &Report{
		Bidders:               n,
		Channels:              len(rankings),
		Excluded:              append([]int(nil), res.Excluded...),
		ComparisonsPerChannel: auc.ComparisonsPerChannel(),
		DegreeHist:            make([]int, n),
		KeepFraction:          keep,
		PerBidder:             make([]BidderAudit, n),
	}
	maxDeg := 0
	cellSum := 0
	for i := 0; i < n; i++ {
		deg := graph.Degree(i)
		if deg > maxDeg {
			maxDeg = deg
		}
		rep.DegreeHist[deg]++
		b := BidderAudit{
			Bidder:           origID[i],
			Digests:          digests[i],
			ConflictDegree:   deg,
			ObservedChannels: len(observed[i]),
		}
		rep.DigestsTotal += digests[i]
		if opts.Area != nil {
			cells, satisfied, err := attack.BCMRobust(opts.Area, observed[i])
			if err != nil {
				return nil, fmt.Errorf("audit: bidder %d: %w", origID[i], err)
			}
			b.AnonymityCells = cells.Count()
			b.Satisfied = satisfied
			cellSum += b.AnonymityCells
			if rep.MinAnonymityCells == 0 || b.AnonymityCells < rep.MinAnonymityCells {
				rep.MinAnonymityCells = b.AnonymityCells
			}
		}
		rep.PerBidder[i] = b
	}
	rep.DegreeHist = rep.DegreeHist[:maxDeg+1]
	if opts.Area != nil && n > 0 {
		rep.MeanAnonymityCells = float64(cellSum) / float64(n)
	}
	if sizes := auc.ShardSizes(); len(sizes) > 0 {
		rep.Tiles = len(sizes)
		rep.TileAnonymitySets = append([]int(nil), sizes...)
		sum := 0
		for _, s := range sizes {
			sum += s
			if rep.MinTileAnonymity == 0 || s < rep.MinTileAnonymity {
				rep.MinTileAnonymity = s
			}
		}
		rep.MeanTileAnonymity = float64(sum) / float64(len(sizes))
	}
	if opts.Metrics != nil {
		snap := opts.Metrics.Snapshot()
		rep.ReplaysDeduped = sumCounters(snap, "lppa_transport_replays_deduped_total")
		rep.FramesRejected = sumCounters(snap, "lppa_transport_frames_rejected_total")
	}
	return rep, nil
}

// originalIDs maps compacted transcript indices back to original
// population ids: the kept ids are every id not in excluded, ascending
// (round.Result documents excluded as ascending original indices).
func originalIDs(n int, excluded []int) []int {
	if len(excluded) == 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	skip := make(map[int]bool, len(excluded))
	for _, id := range excluded {
		skip[id] = true
	}
	out := make([]int, 0, n)
	for id := 0; len(out) < n; id++ {
		if !skip[id] {
			out = append(out, id)
		}
	}
	return out
}

// sumCounters folds every series of one counter family (the snapshot is
// keyed by name{labels}, so a family contributes one entry per label set).
func sumCounters(snap obs.Snapshot, family string) uint64 {
	var total uint64
	for key, v := range snap.Counters {
		if key == family || strings.HasPrefix(key, family+"{") {
			total += v
		}
	}
	return total
}

// WriteJSON serialises the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// Summary renders a terse human-readable digest of the report, one line
// per headline figure, for log output alongside the JSON artifact.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d bidders, %d channels, %d masked digests\n",
		r.Bidders, r.Channels, r.DigestsTotal)
	if len(r.Excluded) > 0 {
		fmt.Fprintf(&b, "audit: excluded bidders %v\n", r.Excluded)
	}
	if r.MinAnonymityCells > 0 {
		fmt.Fprintf(&b, "audit: anonymity cells min %d mean %.1f (keep %.2f)\n",
			r.MinAnonymityCells, r.MeanAnonymityCells, r.KeepFraction)
	}
	if r.Tiles > 0 {
		fmt.Fprintf(&b, "audit: %d tiles, tile anonymity min %d mean %.1f\n",
			r.Tiles, r.MinTileAnonymity, r.MeanTileAnonymity)
	}
	if r.ReplaysDeduped > 0 || r.FramesRejected > 0 {
		fmt.Fprintf(&b, "audit: %d replays deduped, %d frames rejected\n",
			r.ReplaysDeduped, r.FramesRejected)
	}
	worst := make([]BidderAudit, len(r.PerBidder))
	copy(worst, r.PerBidder)
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].AnonymityCells != worst[j].AnonymityCells {
			return worst[i].AnonymityCells < worst[j].AnonymityCells
		}
		return worst[i].Bidder < worst[j].Bidder
	})
	if len(worst) > 3 {
		worst = worst[:3]
	}
	for _, w := range worst {
		fmt.Fprintf(&b, "audit: bidder %d: %d digests, degree %d, anonymity %d\n",
			w.Bidder, w.Digests, w.ConflictDegree, w.AnonymityCells)
	}
	return b.String()
}
