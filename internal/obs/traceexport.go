package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// This file renders a span slice three ways: one JSON object per line
// (machine diffing, jq), the Chrome trace_event format (drop the file on
// chrome://tracing or ui.perfetto.dev), and an indented human-readable
// tree. All three are deterministic for a given span slice — the golden
// test pins the Chrome output byte-for-byte.

// SpanRecord is the JSONL form of one span. Times are nanoseconds: Start
// is wall-clock Unix nanos (informational), Offset is nanos since the
// earliest span in the batch (monotonic, use this for ordering).
type SpanRecord struct {
	Trace         string            `json:"trace"`
	Span          string            `json:"span"`
	Parent        string            `json:"parent,omitempty"`
	Name          string            `json:"name"`
	Proc          string            `json:"proc"`
	StartUnixNano int64             `json:"start_unix_nano"`
	OffsetNano    int64             `json:"offset_nano"`
	DurationNano  int64             `json:"duration_nano"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	Events        []EventRecord     `json:"events,omitempty"`
	Err           string            `json:"err,omitempty"`
}

// EventRecord is the JSONL form of one span event.
type EventRecord struct {
	Name   string            `json:"name"`
	AtNano int64             `json:"at_nano"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

func hexID(v uint64) string { return fmt.Sprintf("%016x", v) }

func attrMap(attrs []Label) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, l := range attrs {
		m[l.Key] = l.Value
	}
	return m
}

// earliestStart returns the minimum start time across spans (zero time
// for an empty slice).
func earliestStart(spans []*Span) time.Time {
	var t0 time.Time
	for i, s := range spans {
		if i == 0 || s.Start.Before(t0) {
			t0 = s.Start
		}
	}
	return t0
}

// Records converts spans to their JSONL record form.
func Records(spans []*Span) []SpanRecord {
	t0 := earliestStart(spans)
	out := make([]SpanRecord, 0, len(spans))
	for _, s := range spans {
		r := SpanRecord{
			Trace:         hexID(uint64(s.Ctx.Trace)),
			Span:          hexID(uint64(s.Ctx.Span)),
			Name:          s.Name,
			Proc:          s.Proc,
			StartUnixNano: s.Start.UnixNano(),
			OffsetNano:    s.Start.Sub(t0).Nanoseconds(),
			DurationNano:  s.Duration.Nanoseconds(),
			Attrs:         attrMap(s.Attrs),
			Err:           s.Err,
		}
		if s.Parent.Valid() {
			r.Parent = hexID(uint64(s.Parent.Span))
		}
		for _, e := range s.Events {
			r.Events = append(r.Events, EventRecord{Name: e.Name, AtNano: e.At.Nanoseconds(), Attrs: attrMap(e.Attrs)})
		}
		out = append(out, r)
	}
	return out
}

// WriteSpansJSONL writes one JSON object per span.
func WriteSpansJSONL(w io.Writer, spans []*Span) error {
	enc := json.NewEncoder(w)
	for _, r := range Records(spans) {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event JSON array.
// Timestamps are microseconds. encoding/json sorts the Args map, so the
// output is deterministic.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	TimeUnit    string        `json:"displayTimeUnit"`
}

// procPIDs maps each distinct process name to a stable pid (sorted
// order, starting at 1).
func procPIDs(spans []*Span) map[string]int {
	procs := map[string]int{}
	for _, s := range spans {
		procs[s.Proc] = 0
	}
	names := make([]string, 0, len(procs))
	for p := range procs {
		names = append(names, p)
	}
	sort.Strings(names)
	for i, p := range names {
		procs[p] = i + 1
	}
	return procs
}

// WriteChromeTrace writes the spans as a Chrome trace_event JSON object.
// Each process name becomes a pid (with a process_name metadata record),
// each span a complete ("X") event, and each span event an instant ("i")
// event; span/parent/trace ids ride in args so cross-process parent
// links survive the format's lack of a parent field.
func WriteChromeTrace(w io.Writer, spans []*Span) error {
	t0 := earliestStart(spans)
	pids := procPIDs(spans)
	ct := chromeTrace{TimeUnit: "ms", TraceEvents: []chromeEvent{}}

	names := make([]string, 0, len(pids))
	for p := range pids {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   pids[p],
			TID:   pids[p],
			Args:  map[string]string{"name": p},
		})
	}

	for _, s := range spans {
		pid := pids[s.Proc]
		args := map[string]string{
			"trace": hexID(uint64(s.Ctx.Trace)),
			"span":  hexID(uint64(s.Ctx.Span)),
		}
		if s.Parent.Valid() {
			args["parent"] = hexID(uint64(s.Parent.Span))
		}
		for _, l := range s.Attrs {
			args[l.Key] = l.Value
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		ts := float64(s.Start.Sub(t0).Nanoseconds()) / 1e3
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name:  s.Name,
			Cat:   "round",
			Phase: "X",
			TS:    ts,
			Dur:   float64(s.Duration.Nanoseconds()) / 1e3,
			PID:   pid,
			TID:   pid,
			Args:  args,
		})
		for _, e := range s.Events {
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name:  e.Name,
				Cat:   "event",
				Phase: "i",
				TS:    ts + float64(e.At.Nanoseconds())/1e3,
				PID:   pid,
				TID:   pid,
				Scope: "t",
				Args:  attrMap(e.Attrs),
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// WriteTraceSummary writes a human-readable tree of the spans: roots
// first, children indented under their parent, events inline. Spans
// whose parent is not in the slice (e.g. a remote parent that never
// arrived) are printed as roots.
func WriteTraceSummary(w io.Writer, spans []*Span) error {
	byParent := map[SpanID][]*Span{}
	present := map[SpanID]bool{}
	for _, s := range spans {
		present[s.Ctx.Span] = true
	}
	var roots []*Span
	for _, s := range spans {
		if s.Parent.Valid() && present[s.Parent.Span] {
			byParent[s.Parent.Span] = append(byParent[s.Parent.Span], s)
		} else {
			roots = append(roots, s)
		}
	}
	var walk func(s *Span, depth int) error
	walk = func(s *Span, depth int) error {
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		status := ""
		if s.Err != "" {
			status = "  ERR=" + s.Err
		}
		if _, err := fmt.Fprintf(w, "%s%s [%s] %s%s\n", indent, s.Name, s.Proc, fmtDur(s.Duration), status); err != nil {
			return err
		}
		for _, e := range s.Events {
			line := indent + "  · " + e.Name + " @" + fmtDur(e.At)
			for _, l := range e.Attrs {
				line += " " + l.Key + "=" + l.Value
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
		for _, c := range byParent[s.Ctx.Span] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}

func fmtDur(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Nanoseconds())/1e6, 'f', 3, 64) + "ms"
}
