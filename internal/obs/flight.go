package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FlightRecorder keeps the last K round traces in a ring buffer and
// auto-dumps the whole buffer to disk — as a Chrome trace_event file —
// whenever a newly recorded round failed, was degraded (lost bidders to
// quorum/straggler exclusion), or blew the latency SLO. The idea is the
// aviation one: the recorder is always on and cheap, and the interesting
// file exists by the time anyone asks what went wrong.
//
// The nil *FlightRecorder is a valid no-op, like every other disabled
// handle in this package.

// RoundTrace is one round's worth of spans plus the verdict fields the
// recorder triggers on.
type RoundTrace struct {
	Label    string // short tag used in the dump filename
	Err      string // non-empty when the round failed
	Degraded bool   // true when bidders were excluded
	Epoch    int    // epoch number, meaningful only when HasEpoch
	HasEpoch bool   // set when the round ran inside an epochal service
	Duration time.Duration
	Spans    []*Span
}

// FlightRecorder retains the last K RoundTraces. Safe for concurrent
// Record calls.
type FlightRecorder struct {
	mu   sync.Mutex
	dir  string
	keep int
	slo  time.Duration
	ring []*RoundTrace
	seq  int
}

// DefaultFlightKeep is how many round traces a recorder retains when the
// caller passes keep <= 0.
const DefaultFlightKeep = 8

// NewFlightRecorder returns a recorder dumping into dir. keep <= 0 means
// DefaultFlightKeep; slo <= 0 disables the latency trigger.
func NewFlightRecorder(dir string, keep int, slo time.Duration) *FlightRecorder {
	if keep <= 0 {
		keep = DefaultFlightKeep
	}
	return &FlightRecorder{dir: dir, keep: keep, slo: slo}
}

// Record buffers one round trace and, when the trace trips a trigger
// (failure, degradation, SLO), dumps every buffered trace to a new file
// in the recorder's directory. It returns the dump path ("" when no dump
// fired). Nil-safe.
func (f *FlightRecorder) Record(rt *RoundTrace) (string, error) {
	if f == nil || rt == nil {
		return "", nil
	}
	f.mu.Lock()
	f.ring = append(f.ring, rt)
	if len(f.ring) > f.keep {
		f.ring = f.ring[len(f.ring)-f.keep:]
	}
	if !f.triggered(rt) {
		f.mu.Unlock()
		return "", nil
	}
	epoch := -1
	if rt.HasEpoch {
		epoch = rt.Epoch
	}
	return f.dumpLocked(rt.Label, epoch)
}

// Dump force-dumps the current ring regardless of triggers — the alarm
// path for conditions the recorder can't see itself, like an SLO
// burn-rate breach or an anonymity-floor violation detected by the ops
// plane. epoch < 0 omits the epoch tag from the filename. It returns the
// dump path; nil-safe ("" on the nil recorder).
func (f *FlightRecorder) Dump(label string, epoch int) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	return f.dumpLocked(label, epoch)
}

// dumpLocked writes the ring to a fresh dump file. It must be entered
// with f.mu held and releases it before touching the filesystem.
func (f *FlightRecorder) dumpLocked(label string, epoch int) (string, error) {
	f.seq++
	seq := f.seq
	var spans []*Span
	for _, r := range f.ring {
		spans = append(spans, r.Spans...)
	}
	f.mu.Unlock()

	sortSpans(spans)
	// Multi-epoch soak dumps interleave ambiguously without the epoch in
	// the name; flight-e<epoch>-NNN-<label> keeps them attributable.
	name := fmt.Sprintf("flight-%03d-%s.trace.json", seq, sanitizeLabel(label))
	if epoch >= 0 {
		name = fmt.Sprintf("flight-e%d-%03d-%s.trace.json", epoch, seq, sanitizeLabel(label))
	}
	path := filepath.Join(f.dir, name)
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", err
	}
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := WriteChromeTrace(file, spans); err != nil {
		file.Close()
		return "", err
	}
	if err := file.Close(); err != nil {
		return "", err
	}
	return path, nil
}

func (f *FlightRecorder) triggered(rt *RoundTrace) bool {
	if rt.Err != "" || rt.Degraded {
		return true
	}
	return f.slo > 0 && rt.Duration > f.slo
}

// Buffered returns how many round traces the ring currently holds.
func (f *FlightRecorder) Buffered() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

// sanitizeLabel keeps dump filenames shell-safe.
func sanitizeLabel(s string) string {
	if s == "" {
		return "round"
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s) && i < 48; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
