package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry two ways: the Prometheus text exposition
// format (for scraping) and an expvar-style JSON snapshot (for one-shot
// dumps, e.g. lppa-sim -metrics-out). Both walk the same sorted view, so
// output is deterministic for a given metric state — the golden tests
// rely on that.

// HistogramSnapshot is the JSON form of one histogram series. Buckets are
// cumulative, like the Prometheus exposition; the upper bound is a string
// so "+Inf" survives JSON encoding.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot is a point-in-time copy of every metric, keyed by
// name{labels}.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// formatBound renders a bucket upper bound the way Prometheus does.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// sortedFamilies returns the families sorted by name, each with its
// series keys sorted, under the registry lock.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns a family's series keys in sorted order.
func (f *family) sortedSeries() []string {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot copies the current value of every metric. Safe to call
// concurrently with updates; a nil registry yields empty (non-nil) maps.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, f := range r.sortedFamilies() {
		for _, key := range f.sortedSeries() {
			s := f.series[key]
			full := f.name + key
			switch f.kind {
			case kindCounter:
				snap.Counters[full] = s.c.Value()
			case kindGauge:
				snap.Gauges[full] = s.g.Value()
			case kindHistogram:
				hs := HistogramSnapshot{Count: s.h.Count(), Sum: s.h.Sum()}
				cum := uint64(0)
				for i := range f.bounds {
					cum += s.h.counts[i].Load()
					hs.Buckets = append(hs.Buckets, BucketCount{LE: formatBound(f.bounds[i]), Count: cum})
				}
				cum += s.h.counts[len(f.bounds)].Load()
				hs.Buckets = append(hs.Buckets, BucketCount{LE: "+Inf", Count: cum})
				snap.Histograms[full] = hs
			}
		}
	}
	return snap
}

// WriteJSON writes the indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promEscaper escapes a label value per the text exposition format
// (version 0.0.4): backslash, double-quote, and newline only. Go's %q is
// close but wrong — it also escapes tabs, control bytes, and non-ASCII
// runes, which Prometheus expects raw UTF-8.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promLabels renders a label set plus one extra label (for histogram le)
// in exposition syntax.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + `="` + promEscaper.Replace(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// helpEscaper escapes # HELP text per the exposition format: only
// backslash and newline (label-value escaping additionally covers
// double quotes, which help text carries raw).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): a # HELP line when the family has help text
// (see Registry.Help), a # TYPE line per family, then one line per
// series; histograms expand to cumulative _bucket series plus _sum and
// _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		var typ string
		switch f.kind {
		case kindCounter:
			typ = "counter"
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if help := r.helpFor(f.name); help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, helpEscaper.Replace(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		for _, key := range f.sortedSeries() {
			s := f.series[key]
			switch f.kind {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.c.Value()); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.g.Value()); err != nil {
					return err
				}
			case kindHistogram:
				cum := uint64(0)
				for i := range f.bounds {
					cum += s.h.counts[i].Load()
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.name, promLabels(s.labels, L("le", formatBound(f.bounds[i]))), cum); err != nil {
						return err
					}
				}
				cum += s.h.counts[len(f.bounds)].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(s.labels, L("le", "+Inf")), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(s.labels),
					strconv.FormatFloat(s.h.Sum(), 'g', -1, 64)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(s.labels), s.h.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// promContentType and jsonContentType are the two representations the
// handler can serve.
const (
	promContentType = "text/plain; version=0.0.4; charset=utf-8"
	jsonContentType = "application/json; charset=utf-8"
)

// negotiate picks a representation from an Accept header. It returns
// "prom", "json", or "" (no acceptable representation). An empty header,
// */*, or text/* with no JSON preference falls back to the path default
// passed in.
func negotiate(accept, pathDefault string) string {
	if strings.TrimSpace(accept) == "" {
		return pathDefault
	}
	wantJSON, wantProm, wildcard := false, false, false
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch {
		case mt == "application/json" || mt == "application/*":
			wantJSON = true
		case mt == "text/plain" || mt == "text/*":
			wantProm = true
		case mt == "*/*" || mt == "":
			wildcard = true
		}
	}
	switch {
	case wantJSON && wantProm:
		return pathDefault // both acceptable: the path decides
	case wantJSON:
		return "json"
	case wantProm:
		return "prom"
	case wildcard:
		return pathDefault
	}
	return ""
}

// Handler serves the registry over HTTP with Accept content negotiation:
// a client asking for application/json gets the JSON snapshot, one
// asking for text/plain gets the Prometheus text format, and a request
// accepting neither is refused with 406. Absent a deciding Accept header
// (missing, */*, or both types acceptable), the path picks: /metrics —
// or any path ending in /metrics — serves Prometheus text (the scrape
// convention), everything else serves JSON. So one listener covers both
// a Prometheus scrape target and a curl-able debug endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		pathDefault := "json"
		if strings.HasSuffix(req.URL.Path, "/metrics") {
			pathDefault = "prom"
		}
		switch negotiate(req.Header.Get("Accept"), pathDefault) {
		case "prom":
			w.Header().Set("Content-Type", promContentType)
			_ = r.WritePrometheus(w)
		case "json":
			w.Header().Set("Content-Type", jsonContentType)
			_ = r.WriteJSON(w)
		default:
			http.Error(w, "acceptable representations: application/json, text/plain", http.StatusNotAcceptable)
		}
	})
}
