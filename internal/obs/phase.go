package obs

import "time"

// PhaseTimer traces one run as a sequence of named, non-overlapping
// phases (encode → conflict graph → allocation → charging for an auction
// round). Each phase's wall time lands in one series of a shared
// histogram family, labelled phase="<name>", so exporters render the
// whole phase model under a single metric name.
//
// The nil PhaseTimer (from a nil Registry) is a no-op that never reads
// the clock, so untimed runs stay byte-identical in behavior and pay
// nothing.
type PhaseTimer struct {
	reg    *Registry
	metric string
	bounds []float64
	phase  string
	hist   *Histogram
	start  time.Time
}

// PhaseTimer returns a timer recording into the named histogram family.
// bounds nil means DurationBuckets. A nil registry returns the nil
// (no-op) timer.
func (r *Registry) PhaseTimer(metric string, bounds []float64) *PhaseTimer {
	if r == nil {
		return nil
	}
	return &PhaseTimer{reg: r, metric: metric, bounds: bounds}
}

// Phase ends the current phase (observing its duration) and starts the
// named one.
func (t *PhaseTimer) Phase(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.flush(now)
	t.phase = name
	t.hist = t.reg.Histogram(t.metric, t.bounds, L("phase", name))
	t.start = now
}

// Stop ends the current phase, if any. The timer can be restarted with
// Phase afterwards.
func (t *PhaseTimer) Stop() {
	if t == nil {
		return
	}
	t.flush(time.Now())
	t.phase, t.hist = "", nil
}

func (t *PhaseTimer) flush(now time.Time) {
	if t.phase == "" {
		return
	}
	t.hist.Observe(now.Sub(t.start).Seconds())
}
