package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycleAndParenting(t *testing.T) {
	tr := NewTracer("auctioneer")
	root := tr.StartTrace("round", L("bidders", "3"))
	if !root.Context().Valid() {
		t.Fatalf("root context invalid: %+v", root.Context())
	}
	child := tr.StartSpan("allocate", root.Context())
	if child.Ctx.Trace != root.Ctx.Trace {
		t.Fatalf("child trace %x != root trace %x", child.Ctx.Trace, root.Ctx.Trace)
	}
	if child.Parent != root.Context() {
		t.Fatalf("child parent = %+v, want %+v", child.Parent, root.Context())
	}
	child.Event("straggler_excluded", L("bidder", "1"))
	child.End()
	root.End()
	root.End() // idempotent

	spans := tr.Take()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Take drains.
	if got := tr.Take(); len(got) != 0 {
		t.Fatalf("second Take returned %d spans", len(got))
	}
	var found bool
	for _, s := range spans {
		if s.Name == "allocate" {
			found = true
			if len(s.Events) != 1 || s.Events[0].Name != "straggler_excluded" {
				t.Fatalf("allocate events = %+v", s.Events)
			}
		}
	}
	if !found {
		t.Fatalf("allocate span missing")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	root := tr.StartTrace("round")
	if root != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	root.Event("e")
	root.Annotate("k", "v")
	root.SetError("boom")
	root.End()
	child := tr.Named("bidder").StartSpan("x", root.Context())
	child.End()
	if got := tr.Take(); got != nil {
		t.Fatalf("nil tracer Take = %v", got)
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer Snapshot = %v", got)
	}
	if tr.Dropped() != 0 || tr.Proc() != "" {
		t.Fatalf("nil tracer not inert")
	}
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpansJSONL(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceSummary(&sb, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNamedViewsShareBuffer(t *testing.T) {
	tr := NewTracer("auctioneer")
	b := tr.Named("bidder-0")
	s1 := tr.StartTrace("round")
	s2 := b.StartSpan("submit", s1.Context())
	s2.End()
	s1.End()
	spans := tr.Take()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	procs := map[string]bool{}
	for _, s := range spans {
		procs[s.Proc] = true
	}
	if !procs["auctioneer"] || !procs["bidder-0"] {
		t.Fatalf("procs = %v", procs)
	}
}

func TestTracerBufferBounded(t *testing.T) {
	tr := NewTracerBuffered("p", 4)
	for i := 0; i < 10; i++ {
		tr.StartTrace("s").End()
	}
	if got := len(tr.Snapshot()); got != 4 {
		t.Fatalf("buffered %d spans, want 4", got)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestTakeTraceFiltersByTrace(t *testing.T) {
	tr := NewTracer("p")
	a := tr.StartTrace("a")
	b := tr.StartTrace("b")
	ca := tr.StartSpan("ca", a.Context())
	ca.End()
	a.End()
	b.End()
	got := tr.TakeTrace(a.Ctx.Trace)
	if len(got) != 2 {
		t.Fatalf("TakeTrace(a) = %d spans, want 2", len(got))
	}
	rest := tr.Take()
	if len(rest) != 1 || rest[0].Name != "b" {
		t.Fatalf("remaining spans = %+v", rest)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer("p")
	root := tr.StartTrace("round")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := tr.StartSpan("w", root.Context())
				root.Event("tick")
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	spans := tr.Take()
	if len(spans) != 401 {
		t.Fatalf("got %d spans, want 401", len(spans))
	}
	ids := map[SpanID]bool{}
	for _, s := range spans {
		if ids[s.Ctx.Span] {
			t.Fatalf("duplicate span id %x", s.Ctx.Span)
		}
		ids[s.Ctx.Span] = true
	}
}

// goldenSpans builds a fixed two-process span set with hand-set ids and
// times, the shape a traced round produces: an auctioneer root span, a
// bidder-side submit span parenting into it, and a phase child with one
// event.
func goldenSpans() []*Span {
	t0 := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	root := &Span{
		Name: "round", Proc: "auctioneer",
		Ctx:   SpanContext{Trace: 1, Span: 2},
		Start: t0, Duration: 1500 * time.Microsecond,
		Attrs: []Label{L("bidders", "2")},
	}
	submit := &Span{
		Name: "submit", Proc: "bidder-0",
		Ctx:    SpanContext{Trace: 1, Span: 7},
		Parent: SpanContext{Trace: 1, Span: 2},
		Start:  t0.Add(50 * time.Microsecond), Duration: 400 * time.Microsecond,
	}
	alloc := &Span{
		Name: "allocate", Proc: "auctioneer",
		Ctx:    SpanContext{Trace: 1, Span: 3},
		Parent: SpanContext{Trace: 1, Span: 2},
		Start:  t0.Add(200 * time.Microsecond), Duration: 300 * time.Microsecond,
		Events: []SpanEvent{{Name: "straggler_excluded", At: 100 * time.Microsecond, Attrs: []Label{L("bidder", "1")}}},
	}
	return []*Span{root, submit, alloc}
}

// TestChromeTraceGolden pins the trace_event output byte-for-byte so the
// file stays loadable in chrome://tracing / Perfetto.
func TestChromeTraceGolden(t *testing.T) {
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"auctioneer"}},` +
		`{"name":"process_name","ph":"M","ts":0,"pid":2,"tid":2,"args":{"name":"bidder-0"}},` +
		`{"name":"round","cat":"round","ph":"X","ts":0,"dur":1500,"pid":1,"tid":1,"args":{"bidders":"2","span":"0000000000000002","trace":"0000000000000001"}},` +
		`{"name":"submit","cat":"round","ph":"X","ts":50,"dur":400,"pid":2,"tid":2,"args":{"parent":"0000000000000002","span":"0000000000000007","trace":"0000000000000001"}},` +
		`{"name":"allocate","cat":"round","ph":"X","ts":200,"dur":300,"pid":1,"tid":1,"args":{"parent":"0000000000000002","span":"0000000000000003","trace":"0000000000000001"}},` +
		`{"name":"straggler_excluded","cat":"event","ph":"i","ts":300,"pid":1,"tid":1,"s":"t","args":{"bidder":"1"}}` +
		`],"displayTimeUnit":"ms"}` + "\n"

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, goldenSpans()); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("chrome trace mismatch\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
	// And it must be valid JSON with the documented shape.
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != 6 {
		t.Fatalf("decoded %d events, want 6", len(decoded.TraceEvents))
	}
}

func TestJSONLAndSummaryExports(t *testing.T) {
	spans := goldenSpans()
	var sb strings.Builder
	if err := WriteSpansJSONL(&sb, spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3", len(lines))
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "round" || rec.Proc != "auctioneer" || rec.DurationNano != 1500000 {
		t.Fatalf("first record = %+v", rec)
	}

	sb.Reset()
	if err := WriteTraceSummary(&sb, spans); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"round [auctioneer]", "  submit [bidder-0]", "  allocate [auctioneer]", "· straggler_excluded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestFlightRecorderDumpsOnTriggers(t *testing.T) {
	dir := t.TempDir()
	fr := NewFlightRecorder(dir, 2, 10*time.Millisecond)

	clean := &RoundTrace{Label: "ok", Duration: time.Millisecond, Spans: goldenSpans()}
	if path, err := fr.Record(clean); err != nil || path != "" {
		t.Fatalf("clean round dumped: path=%q err=%v", path, err)
	}

	failed := &RoundTrace{Label: "quorum fail!", Err: "quorum not reached", Spans: goldenSpans()}
	path, err := fr.Record(failed)
	if err != nil || path == "" {
		t.Fatalf("failed round did not dump: path=%q err=%v", path, err)
	}
	if filepath.Dir(path) != dir || !strings.Contains(filepath.Base(path), "quorum_fail_") {
		t.Fatalf("dump path = %q", path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The dump holds the whole ring (clean + failed) as a Chrome trace.
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("dump is not valid chrome trace JSON: %v", err)
	}
	if len(decoded.TraceEvents) == 0 {
		t.Fatalf("dump has no events")
	}

	// SLO trigger.
	slow := &RoundTrace{Label: "slow", Duration: 50 * time.Millisecond, Spans: goldenSpans()}
	if path, err := fr.Record(slow); err != nil || path == "" {
		t.Fatalf("slow round did not dump: path=%q err=%v", path, err)
	}
	// Degraded trigger.
	deg := &RoundTrace{Label: "degraded", Degraded: true, Spans: goldenSpans()}
	if path, err := fr.Record(deg); err != nil || path == "" {
		t.Fatalf("degraded round did not dump: path=%q err=%v", path, err)
	}
	// Ring keeps at most 2.
	if fr.Buffered() != 2 {
		t.Fatalf("buffered = %d, want 2", fr.Buffered())
	}

	var nilFR *FlightRecorder
	if path, err := nilFR.Record(failed); err != nil || path != "" {
		t.Fatalf("nil recorder dumped: %q %v", path, err)
	}
	if nilFR.Buffered() != 0 {
		t.Fatalf("nil recorder buffered != 0")
	}
}
