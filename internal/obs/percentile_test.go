package obs

import (
	"testing"
	"time"
)

func TestLatencySummaryQuantiles(t *testing.T) {
	var s LatencySummary
	// 1..100ms in shuffled-ish order; nearest-rank quantiles are exact.
	for _, ms := range []int{50, 1, 100, 25, 75} {
		s.Observe(time.Duration(ms) * time.Millisecond)
	}
	for ms := 2; ms <= 99; ms++ {
		switch ms {
		case 25, 50, 75:
			continue
		}
		s.Observe(time.Duration(ms) * time.Millisecond)
	}
	if s.Count() != 100 {
		t.Fatalf("count %d, want 100", s.Count())
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{0.5, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if s.Max() != 100*time.Millisecond {
		t.Errorf("Max = %v", s.Max())
	}
	if got := s.Mean(); got != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", got)
	}
	// Quantiles stay monotone.
	prev := time.Duration(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.95, 0.99} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestLatencySummaryEmptyAndSingle(t *testing.T) {
	var s LatencySummary
	if s.Quantile(0.99) != 0 || s.Count() != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty summary must report zeros")
	}
	s.Observe(7 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 7*time.Millisecond {
			t.Errorf("single-sample Quantile(%v) = %v", q, got)
		}
	}
}

func TestLatencySummaryObserveAfterQuantile(t *testing.T) {
	// Interleaving Observe and Quantile (the harness aggregates per epoch
	// batch) must keep quantiles exact.
	var s LatencySummary
	s.Observe(10 * time.Millisecond)
	s.Observe(30 * time.Millisecond)
	if got := s.Quantile(1); got != 30*time.Millisecond {
		t.Fatalf("Quantile(1) = %v", got)
	}
	s.Observe(20 * time.Millisecond)
	if got := s.Quantile(0.5); got != 20*time.Millisecond {
		t.Fatalf("after re-observe Quantile(0.5) = %v", got)
	}
}

func TestSpanAggregatorGroupsByName(t *testing.T) {
	tr := NewTracer("agg-test")
	for i := 0; i < 3; i++ {
		root := tr.StartTrace("round")
		child := tr.StartSpan("encode", root.Context())
		child.End()
		root.End()
	}
	agg := NewSpanAggregator()
	// Feed in two batches to pin incremental aggregation.
	spans := tr.Take()
	agg.AddSpans(spans[:2])
	agg.AddSpans(spans[2:])
	agg.AddSpans(nil)
	if got := agg.Names(); len(got) != 2 || got[0] != "encode" || got[1] != "round" {
		t.Fatalf("names = %v", got)
	}
	if agg.Summary("round").Count() != 3 || agg.Summary("encode").Count() != 3 {
		t.Fatalf("counts: round=%d encode=%d",
			agg.Summary("round").Count(), agg.Summary("encode").Count())
	}
	if agg.Summary("missing") != nil {
		t.Fatal("unknown name must return nil")
	}
}
