package mask

import (
	"math/rand"
	"testing"
)

// FuzzOpenValueRejectsGarbage: arbitrary bytes must never open
// successfully (authenticated encryption) and must never panic.
func FuzzOpenValueRejectsGarbage(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, SealedValueLen))
	f.Add(make([]byte, SealedValueLen-1))
	f.Add(make([]byte, 1024))
	f.Fuzz(func(t *testing.T, ct []byte) {
		s, err := NewSealer(make(Key, 16), rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if v, err := s.OpenValue(ct); err == nil {
			// A forged ciphertext passing GCM authentication would be a
			// catastrophic failure (probability ~2^-128 per try).
			t.Fatalf("garbage ciphertext opened to %d", v)
		}
	})
}

// FuzzSealOpenRoundTrip: every value must survive seal/open, and a
// one-byte flip must be rejected.
func FuzzSealOpenRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(1<<63), uint8(5))
	f.Fuzz(func(t *testing.T, v uint64, flip uint8) {
		s, err := NewSealer(make(Key, 16), rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		ct := s.SealValue(v)
		got, err := s.OpenValue(ct)
		if err != nil || got != v {
			t.Fatalf("round trip: %d, %v", got, err)
		}
		ct[int(flip)%len(ct)] ^= 0x01
		if _, err := s.OpenValue(ct); err == nil {
			t.Fatal("tampered ciphertext accepted")
		}
	})
}
