package mask

import (
	"encoding/binary"
	"sort"
)

// This file is the auctioneer-side fast path for masked set operations.
// Bidders submit map-backed Sets (the wire encoding, package doc); the
// auctioneer interns every digest it receives into a dense uint32 ID
// through a Dict and works on sorted-slice IntSets from then on. Nothing
// here touches a single protocol byte: interning is a private view of the
// same digests, and every IntSet operation is defined to agree exactly
// with its Set counterpart (pinned by the property tests).

// Dict interns 16-byte digests into dense uint32 IDs. Two digests map to
// the same ID iff they are equal, so ID equality is digest equality and
// set operations can run on 4-byte keys instead of 16-byte ones.
//
// Lifetime: one Dict serves one auction's ingest (one key epoch). Digests
// from different HMAC keys never collide meaningfully, so sharing a Dict
// across channels is sound but keeps it needlessly large; the auctioneer
// uses one Dict per bid column and one for all location sets.
//
// A Dict is not safe for concurrent interning. Interning happens once at
// ingest on one goroutine; the IntSets it produces are immutable and safe
// to share across any number of readers.
//
// Internally the Dict is an open-addressing table that uses the digest's
// own leading 8 bytes as the hash: digests are HMAC outputs, i.e. already
// uniformly distributed, so re-hashing 16-byte keys (what a Go map does
// per operation) is pure waste. Equality is still checked on the full
// digest, so interning is exact — truncation only steers probing.
type Dict struct {
	keys  []Digest // slot → digest, valid where vals[slot] != 0
	vals  []uint32 // slot → ID+1; 0 marks an empty slot
	probe uint64   // len(keys)−1, for masking hashes (len is a power of 2)
	n     int      // distinct digests interned
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return NewDictCap(0) }

// NewDictCap returns an empty dictionary pre-sized for about n digests,
// sparing the incremental growth when the ingest volume is known
// (bidders × set sizes).
func NewDictCap(n int) *Dict {
	cap := uint64(16)
	for cap*3 < uint64(n)*4 { // keep load factor under 3/4
		cap <<= 1
	}
	return &Dict{keys: make([]Digest, cap), vals: make([]uint32, cap), probe: cap - 1}
}

// Len reports the number of distinct digests interned so far.
func (d *Dict) Len() int { return d.n }

func (d *Dict) slot(dg Digest) uint64 { return binary.LittleEndian.Uint64(dg[:8]) & d.probe }

// Intern returns the ID of dg, assigning the next dense ID on first sight.
func (d *Dict) Intern(dg Digest) uint32 {
	for s := d.slot(dg); ; s = (s + 1) & d.probe {
		switch {
		case d.vals[s] == 0:
			d.n++
			d.keys[s] = dg
			d.vals[s] = uint32(d.n) // ID n−1, stored +1
			if uint64(d.n)*4 > len64(d.keys)*3 {
				d.grow()
			}
			return uint32(d.n - 1)
		case d.keys[s] == dg:
			return d.vals[s] - 1
		}
	}
}

// Lookup returns the ID of dg if it has been interned. A digest never
// interned is in no interned set, so callers treat !ok as "not a member".
func (d *Dict) Lookup(dg Digest) (uint32, bool) {
	for s := d.slot(dg); ; s = (s + 1) & d.probe {
		switch {
		case d.vals[s] == 0:
			return 0, false
		case d.keys[s] == dg:
			return d.vals[s] - 1, true
		}
	}
}

func len64(ds []Digest) uint64 { return uint64(len(ds)) }

// grow doubles the table and reinserts every occupied slot (IDs are
// preserved; only slots move).
func (d *Dict) grow() {
	old := *d
	cap := uint64(len(old.keys)) * 2
	d.keys = make([]Digest, cap)
	d.vals = make([]uint32, cap)
	d.probe = cap - 1
	for s, v := range old.vals {
		if v == 0 {
			continue
		}
		t := d.slot(old.keys[s])
		for d.vals[t] != 0 {
			t = (t + 1) & d.probe
		}
		d.keys[t] = old.keys[s]
		d.vals[t] = v
	}
}

// IntSet is an interned digest set: the IDs of its members in ascending
// order plus a 64-bit Bloom signature over them. It is immutable after
// construction and safe for concurrent reads. The zero value is the empty
// set.
type IntSet struct {
	ids []uint32 // sorted ascending, no duplicates
	sig uint64   // one bit per member, sigBit(id)
}

// InternSet interns every member of s and returns its IntSet. Members of
// the same Dict's IntSets are mutually comparable; never mix Dicts.
func (d *Dict) InternSet(s Set) IntSet {
	out := IntSet{ids: make([]uint32, 0, len(s.order))}
	for _, dg := range s.order {
		out.ids = append(out.ids, d.Intern(dg))
	}
	sortIDs(out.ids)
	for _, id := range out.ids {
		out.sig |= sigBit(id)
	}
	return out
}

// sortIDs sorts ascending. Protocol sets are small (families w+1, covers
// 2w−2 — a couple dozen IDs), where insertion sort beats the reflective
// sort.Slice by an order of magnitude and allocates nothing; larger inputs
// fall back to the stdlib.
func sortIDs(ids []uint32) {
	if len(ids) > 48 {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return
	}
	for i := 1; i < len(ids); i++ {
		v := ids[i]
		j := i - 1
		for j >= 0 && ids[j] > v {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = v
	}
}

// sigBit maps an ID to one of 64 signature bits through a splitmix64-style
// finalizer, so dense IDs spread uniformly. A shared member forces a shared
// bit in both signatures — that implication is the whole soundness argument
// for the quick reject in Intersects.
func sigBit(id uint32) uint64 {
	x := (uint64(id) + 1) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return 1 << (x >> 58)
}

// Len reports the number of members.
func (s IntSet) Len() int { return len(s.ids) }

// AppendIDs appends the set's interned member IDs (ascending) to dst and
// returns the extended slice. IDs are canonical within one Dict — two of
// its IntSets are equal as sets iff their ID slices are equal — so the
// appended run works as a grouping key for same-digest-set detection.
func (s IntSet) AppendIDs(dst []uint32) []uint32 { return append(dst, s.ids...) }

// Contains reports whether id is a member.
func (s IntSet) Contains(id uint32) bool {
	if s.sig&sigBit(id) == 0 {
		return false
	}
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.ids) && s.ids[lo] == id
}

// gallopRatio is the size skew beyond which Intersects abandons the linear
// merge and gallops the small set through the large one: exponential probe
// plus binary search costs O(small · log large), which wins once
// large/small exceeds roughly the log factor.
const gallopRatio = 8

// Intersects reports whether s and other share at least one member —
// exactly Set.Intersects on the underlying digests, provided both sets
// came from the same Dict.
//
// Fast paths, in order: a Bloom quick reject (disjoint signatures soundly
// prove empty intersection — a shared member would force a shared bit, so
// only non-empty intersections and false positives survive the AND, and
// false positives merely fall through to the exact merge below); a range
// reject on the sorted bounds; then a cache-friendly linear merge, or a
// galloping search when one set dwarfs the other. No path allocates.
func (s IntSet) Intersects(other IntSet) bool {
	if s.sig&other.sig == 0 {
		return false
	}
	a, b := s.ids, other.ids
	if len(a) > len(b) {
		a, b = b, a
	}
	// len(a) > 0 here: an empty set has sig 0 and was rejected above.
	if a[len(a)-1] < b[0] || b[len(b)-1] < a[0] {
		return false
	}
	if len(b) >= gallopRatio*len(a) {
		lo := 0
		for _, v := range a {
			lo = gallop(b, lo, v)
			if lo == len(b) {
				return false
			}
			if b[lo] == v {
				return true
			}
		}
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		if ai == bj {
			return true
		}
		if ai < bj {
			i++
		} else {
			j++
		}
	}
	return false
}

// IntersectStats tallies counted masked-set intersections: how many were
// evaluated and how many the Bloom signature pre-check decided alone.
// The auctioneer's observed paths (core.Auctioneer.SetObserver) aggregate
// these into an obs.Registry; the uncounted Intersects stays the hot path
// so disabled observability costs nothing.
type IntersectStats struct {
	Calls        uint64
	BloomRejects uint64
}

// IntersectsCounted is Intersects, additionally tallying the call — and,
// when the signature AND alone proves disjointness, the quick reject —
// into st.
func (s IntSet) IntersectsCounted(other IntSet, st *IntersectStats) bool {
	st.Calls++
	if s.sig&other.sig == 0 {
		st.BloomRejects++
		return false
	}
	return s.Intersects(other)
}

// gallop returns the smallest index ≥ lo with b[index] ≥ v (len(b) if
// none): exponential probing from lo narrows a window that a binary search
// then resolves, so successive calls with ascending v scan b in amortized
// O(log gap) instead of O(log len).
func gallop(b []uint32, lo int, v uint32) int {
	if lo >= len(b) || b[lo] >= v {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < len(b) && b[hi] < v {
		lo = hi
		step <<= 1
		hi += step
	}
	if hi > len(b) {
		hi = len(b)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
