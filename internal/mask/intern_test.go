package mask

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// digestsFrom masks vs under a fixed test key (so equal values collide
// across sets, giving intersections something to find).
func internTestMasker(t *testing.T) *Masker {
	t.Helper()
	m, err := NewMasker(make(Key, 32))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestInternSetAgreesWithSet is the representation anchor: for random
// digest collections, every IntSet operation must agree with the map-based
// Set it was interned from — Len, Contains (members and non-members), and
// Intersects against every other set in the batch.
func TestInternSetAgreesWithSet(t *testing.T) {
	m := internTestMasker(t)
	// Values drawn from a small domain so sets genuinely overlap.
	prop := func(raw [][]uint8, probes []uint8) bool {
		dict := NewDict()
		sets := make([]Set, len(raw))
		ints := make([]IntSet, len(raw))
		for i, vs := range raw {
			nums := make([]uint64, len(vs))
			for j, v := range vs {
				nums[j] = uint64(v % 64)
			}
			sets[i] = m.MaskSet(nums)
			ints[i] = dict.InternSet(sets[i])
		}
		for i := range sets {
			if ints[i].Len() != sets[i].Len() {
				return false
			}
			for _, dg := range sets[i].Digests() {
				id, ok := dict.Lookup(dg)
				if !ok || !ints[i].Contains(id) {
					return false
				}
			}
			for _, p := range probes {
				dg := m.Mask(uint64(p % 64))
				want := sets[i].Contains(dg)
				got := false
				if id, ok := dict.Lookup(dg); ok {
					got = ints[i].Contains(id)
				}
				if got != want {
					return false
				}
			}
			for j := range sets {
				if ints[i].Intersects(ints[j]) != sets[i].Intersects(sets[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestInternSetAgreesWithPaddedCovers repeats the agreement check on the
// shape the protocol actually produces: masked range covers padded with
// random digests (PadTo), intersected against masked families.
func TestInternSetAgreesWithPaddedCovers(t *testing.T) {
	m := internTestMasker(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		dict := NewDict()
		n := 1 + rng.Intn(12)
		sets := make([]Set, 2*n)
		ints := make([]IntSet, 2*n)
		for i := 0; i < n; i++ {
			famVals := make([]uint64, 1+rng.Intn(10))
			for j := range famVals {
				famVals[j] = uint64(rng.Intn(48))
			}
			fam := m.MaskSet(famVals)
			cover := m.MaskSet([]uint64{uint64(rng.Intn(48)), uint64(rng.Intn(48))})
			cover.PadTo(18, rng) // the paper's 2w−2 padding, random digests
			sets[2*i], sets[2*i+1] = fam, cover
			ints[2*i] = dict.InternSet(fam)
			ints[2*i+1] = dict.InternSet(cover)
		}
		for i := range sets {
			for j := range sets {
				if got, want := ints[i].Intersects(ints[j]), sets[i].Intersects(sets[j]); got != want {
					t.Fatalf("trial %d: interned Intersects(%d,%d)=%v, map says %v", trial, i, j, got, want)
				}
			}
		}
	}
}

// TestInternDeterministicIDs pins Dict semantics: re-interning the same
// digest returns the same ID, distinct digests get distinct dense IDs.
func TestInternDeterministicIDs(t *testing.T) {
	m := internTestMasker(t)
	dict := NewDict()
	a, b := m.Mask(1), m.Mask(2)
	ida, idb := dict.Intern(a), dict.Intern(b)
	if ida == idb {
		t.Fatal("distinct digests share an ID")
	}
	if got := dict.Intern(a); got != ida {
		t.Fatalf("re-interning changed ID: %d then %d", ida, got)
	}
	if dict.Len() != 2 {
		t.Fatalf("dict has %d entries, want 2", dict.Len())
	}
	if _, ok := dict.Lookup(m.Mask(3)); ok {
		t.Fatal("Lookup invented an ID for a digest never interned")
	}
}

// TestIntSetSortedInvariant checks InternSet produces strictly ascending
// IDs regardless of map iteration order.
func TestIntSetSortedInvariant(t *testing.T) {
	m := internTestMasker(t)
	dict := NewDict()
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = uint64(i)
	}
	s := dict.InternSet(m.MaskSet(vals))
	if !sort.SliceIsSorted(s.ids, func(i, j int) bool { return s.ids[i] < s.ids[j] }) {
		t.Fatal("interned IDs not sorted")
	}
	for i := 1; i < len(s.ids); i++ {
		if s.ids[i] == s.ids[i-1] {
			t.Fatal("duplicate ID in interned set")
		}
	}
}

// TestIntSetGallopPath forces the skewed-size galloping branch (one set
// ≥ gallopRatio× the other) on both hit and miss outcomes, including the
// first/last element corners the probe loop must not skip.
func TestIntSetGallopPath(t *testing.T) {
	m := internTestMasker(t)
	large := make([]uint64, 300)
	for i := range large {
		large[i] = uint64(2 * i) // evens
	}
	dict := NewDict()
	big := dict.InternSet(m.MaskSet(large))
	cases := []struct {
		name string
		vals []uint64
		want bool
	}{
		{"miss-odds", []uint64{1, 101, 599}, false},
		{"hit-first", []uint64{0, 9999995, 9999997}, true},
		{"hit-last", []uint64{9999991, 598}, true},
		{"hit-middle", []uint64{7771, 300, 7773}, true},
		{"miss-outside", []uint64{9999901, 9999903}, false},
	}
	for _, tc := range cases {
		small := dict.InternSet(m.MaskSet(tc.vals))
		if big.Len() < gallopRatio*small.Len() {
			t.Fatalf("%s: fixture not skewed enough (%d vs %d)", tc.name, big.Len(), small.Len())
		}
		if got := big.Intersects(small); got != tc.want {
			t.Errorf("%s: Intersects=%v, want %v", tc.name, got, tc.want)
		}
		if got := small.Intersects(big); got != tc.want {
			t.Errorf("%s (flipped): Intersects=%v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestIntSetEmpty pins the zero-value corners: empty sets intersect
// nothing and contain nothing.
func TestIntSetEmpty(t *testing.T) {
	m := internTestMasker(t)
	dict := NewDict()
	var empty IntSet
	full := dict.InternSet(m.MaskSet([]uint64{1, 2, 3}))
	if empty.Intersects(full) || full.Intersects(empty) || empty.Intersects(empty) {
		t.Error("empty IntSet intersects something")
	}
	if empty.Contains(0) {
		t.Error("empty IntSet contains ID 0")
	}
	if empty.Len() != 0 {
		t.Error("empty IntSet has members")
	}
}

// TestSortedDigestsStable pins the wire-ordering helper: output is sorted,
// complete, and identical across two independently built copies of the
// same set (the property SetToWire's byte stability rests on).
func TestSortedDigestsStable(t *testing.T) {
	m := internTestMasker(t)
	vals := []uint64{9, 3, 7, 1, 5, 0, 2}
	a := m.MaskSet(vals)
	b := m.MaskSet([]uint64{0, 1, 2, 3, 5, 7, 9}) // same members, different build order
	da, db := a.SortedDigests(), b.SortedDigests()
	if len(da) != len(vals) || len(da) != len(db) {
		t.Fatalf("sorted dump sizes %d/%d, want %d", len(da), len(db), len(vals))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("position %d differs between equal sets", i)
		}
		if i > 0 && string(da[i-1][:]) >= string(da[i][:]) {
			t.Fatalf("digests not strictly ascending at %d", i)
		}
	}
}
