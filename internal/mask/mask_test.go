package mask

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lppa/internal/prefix"
)

func testKey(b byte) Key {
	k := make(Key, 32)
	for i := range k {
		k[i] = b
	}
	return k
}

func TestMaskerDeterministicAndKeyed(t *testing.T) {
	m1, err := NewMasker(testKey(1))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMasker(testKey(2))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Mask(42) != m1.Mask(42) {
		t.Error("same key, same input: digests differ")
	}
	if m1.Mask(42) == m2.Mask(42) {
		t.Error("different keys produced equal digests")
	}
	if m1.Mask(42) == m1.Mask(43) {
		t.Error("different inputs produced equal digests")
	}
}

func TestNewMaskerRejectsShortKey(t *testing.T) {
	if _, err := NewMasker(Key("short")); err == nil {
		t.Fatal("expected error for short key")
	}
}

func TestSetIntersects(t *testing.T) {
	m, _ := NewMasker(testKey(3))
	a := m.MaskSet([]uint64{1, 2, 3})
	b := m.MaskSet([]uint64{3, 4})
	c := m.MaskSet([]uint64{4, 5})
	if !a.Intersects(b) {
		t.Error("a∩b should be nonempty")
	}
	if !b.Intersects(a) {
		t.Error("Intersects must be symmetric")
	}
	if a.Intersects(c) {
		t.Error("a∩c should be empty")
	}
	var empty Set
	if empty.Intersects(a) || a.Intersects(empty) {
		t.Error("empty set intersects nothing")
	}
}

func TestSetAddContainsLen(t *testing.T) {
	var s Set
	m, _ := NewMasker(testKey(4))
	d := m.Mask(7)
	if s.Contains(d) || s.Len() != 0 {
		t.Error("zero set should be empty")
	}
	s.Add(d)
	s.Add(d)
	if !s.Contains(d) || s.Len() != 1 {
		t.Errorf("after Add: len=%d contains=%v", s.Len(), s.Contains(d))
	}
	if got := len(s.Digests()); got != 1 {
		t.Errorf("Digests() len = %d", got)
	}
}

func TestPadToHidesCardinalityWithoutChangingIntersection(t *testing.T) {
	m, _ := NewMasker(testKey(5))
	rng := rand.New(rand.NewSource(7))
	a := m.MaskSet([]uint64{10, 20})
	b := m.MaskSet([]uint64{30, 40})
	aPad := m.MaskSet([]uint64{10, 20})
	aPad.PadTo(30, rng)
	if aPad.Len() != 30 {
		t.Fatalf("padded len = %d, want 30", aPad.Len())
	}
	if aPad.Intersects(b) != a.Intersects(b) {
		t.Error("padding changed intersection outcome")
	}
	c := m.MaskSet([]uint64{20})
	if !aPad.Intersects(c) {
		t.Error("padding destroyed genuine intersection")
	}
	// No-op when already large enough.
	aPad.PadTo(5, rng)
	if aPad.Len() != 30 {
		t.Error("PadTo shrank or grew an already-large set")
	}
}

// TestMaskedMembershipEquivalence is the central soundness property: the
// masked range-query protocol must decide interval membership exactly like
// direct comparison.
func TestMaskedMembershipEquivalence(t *testing.T) {
	const w = 12
	m, _ := NewMasker(testKey(6))
	prop := func(xv, av, bv uint16) bool {
		x := uint64(xv) % (1 << w)
		lo := uint64(av) % (1 << w)
		hi := uint64(bv) % (1 << w)
		if lo > hi {
			lo, hi = hi, lo
		}
		fam := m.MaskSet(prefix.Numericalized(prefix.Family(x, w)))
		cov := m.MaskSet(prefix.Numericalized(prefix.Cover(lo, hi, w)))
		return fam.Intersects(cov) == (lo <= x && x <= hi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s, err := NewSealer(make(Key, 16), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		ct := s.SealValue(v)
		if len(ct) != SealedValueLen {
			t.Fatalf("ciphertext len = %d, want %d", len(ct), SealedValueLen)
		}
		got, err := s.OpenValue(ct)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if got != v {
			t.Errorf("round trip = %d, want %d", got, v)
		}
	}
}

func TestSealDistinctCiphertextsForEqualPlaintexts(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s, _ := NewSealer(make(Key, 16), rng)
	a := s.SealValue(99)
	b := s.SealValue(99)
	if bytes.Equal(a, b) {
		t.Error("equal plaintexts sealed to equal ciphertexts")
	}
}

func TestSealRejectsTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s, _ := NewSealer(make(Key, 16), rng)
	ct := s.SealValue(7)
	ct[len(ct)-1] ^= 0xff
	if _, err := s.OpenValue(ct); err == nil {
		t.Error("tampered ciphertext accepted")
	}
	if _, err := s.OpenValue(ct[:10]); err == nil {
		t.Error("truncated ciphertext accepted")
	}
}

func TestSealerRejectsBadKey(t *testing.T) {
	if _, err := NewSealer(make(Key, 10), rand.New(rand.NewSource(1))); err == nil {
		t.Error("expected error for 10-byte key")
	}
}

func TestNewKeyRing(t *testing.T) {
	kr, err := NewKeyRing(5, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if kr.Channels() != 5 {
		t.Errorf("channels = %d, want 5", kr.Channels())
	}
	if len(kr.G0) != 32 || len(kr.GC) != 16 {
		t.Errorf("key lengths g0=%d gc=%d", len(kr.G0), len(kr.GC))
	}
	seen := map[string]bool{string(kr.G0): true, string(kr.GC): true}
	for _, gb := range kr.GB {
		if seen[string(gb)] {
			t.Error("duplicate key in ring")
		}
		seen[string(gb)] = true
	}
}

func TestDeriveKeyRingDeterministic(t *testing.T) {
	a, err := DeriveKeyRing([]byte("seed"), 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := DeriveKeyRing([]byte("seed"), 3, 2, 4)
	c, _ := DeriveKeyRing([]byte("other"), 3, 2, 4)
	if !bytes.Equal(a.G0, b.G0) || !bytes.Equal(a.GB[2], b.GB[2]) || !bytes.Equal(a.GC, b.GC) {
		t.Error("same seed produced different rings")
	}
	if bytes.Equal(a.G0, c.G0) {
		t.Error("different seeds produced same g0")
	}
	if bytes.Equal(a.GB[0], a.GB[1]) {
		t.Error("per-channel keys must differ")
	}
}

func TestKeyRingParamValidation(t *testing.T) {
	if _, err := NewKeyRing(0, 1, 1); err == nil {
		t.Error("channels=0 accepted")
	}
	if _, err := DeriveKeyRing([]byte("s"), 1, 0, 1); err == nil {
		t.Error("rd=0 accepted")
	}
	if _, err := DeriveKeyRing([]byte("s"), 1, 1, 0); err == nil {
		t.Error("cr=0 accepted")
	}
}
