package mask

// Inverted candidate index over interned digest IDs (DESIGN.md §5f). The
// all-pairs conflict scan evaluates every (i, j) even though in sparse
// geometries almost no pairs share a digest. This index inverts the
// range-cover sets: for each digest ID it keeps the sorted posting list of
// bidders whose cover contains that digest, so candidate pairs fall out of
// posting-list self-joins — bidders sharing no digest never meet — and only
// candidates are confirmed with the exact IntSet intersection.
//
// Soundness rests on the per-axis symmetry of the masked match: a prefix
// cover represents its integer range exactly, so family(xᵢ) ∩ cover(xⱼ±δ)
// is non-empty iff |xᵢ−xⱼ| ≤ δ iff family(xⱼ) ∩ cover(xᵢ±δ) is non-empty.
// Generating candidates one-directionally — row i scans the postings of its
// own family digests for partners j > i — therefore reaches every truly
// matching pair at least once, and the oracle confirm discards the rest.
// The graph built from these candidates is bit-identical to the all-pairs
// build by construction.

// Index maps each interned digest ID to the ascending posting list of the
// bidders whose cover set contains it. Populate it incrementally with Add
// during ingest (one call per bidder, in bidder order — that ordering is
// what keeps posting lists sorted for free); reading through Cursor seals
// it against further Adds.
type Index struct {
	n        int
	fam      [][]uint32 // bidder → family digest IDs (borrowed from the immutable IntSet)
	rng      [][]uint32 // digest ID → bidders whose cover contains it, ascending
	postings int

	// Skew guard (sealed lazily on first Cursor): a digest whose posting
	// list exceeds hotCap is "hot" — scanning it per family occurrence would
	// approach all-pairs work with posting-list overhead on top — and every
	// row whose family contains a hot digest falls back to plain pairwise
	// probing of all j > i. That keeps the pathological dense case at oracle
	// cost instead of above it, and stays complete: any pair whose only
	// witness digest is hot is reached through its row's full probe.
	hotCap  int // 0 = auto (max(hotMinPostings, n/8))
	hot     []bool
	hotRows []bool
	sealed  bool
}

// hotMinPostings floors the auto hot threshold so small populations, where
// all-pairs is cheap anyway, never trip the guard.
const hotMinPostings = 64

// NewIndex returns an empty index pre-sized for about n bidders.
func NewIndex(n int) *Index {
	return &Index{fam: make([][]uint32, 0, n)}
}

// SetHotThreshold overrides the skew-guard posting-list threshold (testing
// and tuning; 0 restores the automatic max(64, n/8)). Call before the first
// Cursor.
func (ix *Index) SetHotThreshold(cap int) {
	if ix.sealed {
		panic("mask: SetHotThreshold after Cursor")
	}
	ix.hotCap = cap
}

// Add posts one bidder: its family digest IDs are kept for row scans and
// each cover digest ID gains the bidder on its posting list. Bidders are
// numbered 0,1,2,… in call order. The IntSets must come from the same Dict
// and stay immutable (Add borrows their ID slices).
func (ix *Index) Add(fam, rng IntSet) int {
	if ix.sealed {
		panic("mask: Index.Add after Cursor")
	}
	i := uint32(ix.n)
	ix.n++
	ix.fam = append(ix.fam, fam.ids)
	for _, id := range rng.ids {
		if int(id) >= len(ix.rng) {
			ix.rng = append(ix.rng, make([][]uint32, int(id)+1-len(ix.rng))...)
		}
		ix.rng[id] = append(ix.rng[id], i)
	}
	ix.postings += len(rng.ids)
	return int(i)
}

// IndexStats summarizes a sealed index: posting volume and how much of the
// population the skew guard diverted to pairwise probing.
type IndexStats struct {
	Bidders    int
	Postings   int
	HotDigests int
	HotRows    int
}

// Stats seals the index and reports its shape.
func (ix *Index) Stats() IndexStats {
	ix.seal()
	st := IndexStats{Bidders: ix.n, Postings: ix.postings}
	for _, h := range ix.hot {
		if h {
			st.HotDigests++
		}
	}
	for _, h := range ix.hotRows {
		if h {
			st.HotRows++
		}
	}
	return st
}

// seal freezes the index and computes the skew guard. Idempotent.
func (ix *Index) seal() {
	if ix.sealed {
		return
	}
	ix.sealed = true
	cap := ix.hotCap
	if cap <= 0 {
		cap = ix.n / 8
		if cap < hotMinPostings {
			cap = hotMinPostings
		}
	}
	ix.hot = make([]bool, len(ix.rng))
	ix.hotRows = make([]bool, ix.n)
	hotAny := false
	for d, p := range ix.rng {
		if len(p) > cap {
			ix.hot[d] = true
			hotAny = true
		}
	}
	if !hotAny {
		return
	}
	for i, fam := range ix.fam {
		for _, d := range fam {
			if int(d) < len(ix.hot) && ix.hot[d] {
				ix.hotRows[i] = true
				break
			}
		}
	}
}

// IndexCursor generates candidate partners row by row. Cursors own their
// scratch state (a dedup bitset and the output slice), so one sealed Index
// serves any number of concurrent cursors — one per worker in the parallel
// build. Not safe for concurrent use of a single cursor.
type IndexCursor struct {
	ix      *Index
	mark    []uint64 // dedup bitset over bidders, cleared after every row
	out     []uint32
	scanned uint64
	emitted uint64
}

// Cursor seals the index (first call) and returns a fresh cursor.
func (ix *Index) Cursor() *IndexCursor {
	ix.seal()
	return &IndexCursor{ix: ix, mark: make([]uint64, (ix.n+63)/64)}
}

// Row returns the deduplicated candidate partners j > i of bidder i: every
// j whose cover posting lists meet i's family digests (a superset of i's
// true conflict partners above i, by the symmetry argument in the package
// comment), or all of (i, n) when the skew guard diverted row i. The slice
// is reused — valid only until the next Row call.
func (c *IndexCursor) Row(i int) []uint32 {
	ix := c.ix
	c.out = c.out[:0]
	if ix.hotRows[i] {
		for j := i + 1; j < ix.n; j++ {
			c.out = append(c.out, uint32(j))
		}
		c.emitted += uint64(len(c.out))
		return c.out
	}
	for _, d := range ix.fam[i] {
		if int(d) >= len(ix.rng) {
			continue // family digest on no cover: empty posting list
		}
		p := ix.rng[d]
		lo := searchGT(p, uint32(i))
		c.scanned += uint64(len(p) - lo)
		for _, j := range p[lo:] {
			w, b := j/64, uint64(1)<<(j%64)
			if c.mark[w]&b == 0 {
				c.mark[w] |= b
				c.out = append(c.out, j)
			}
		}
	}
	for _, j := range c.out {
		c.mark[j/64] &^= 1 << (j % 64)
	}
	c.emitted += uint64(len(c.out))
	return c.out
}

// Stats reports how many posting entries this cursor scanned and how many
// candidates it emitted (hot-row probes included — they are candidates the
// oracle still has to confirm).
func (c *IndexCursor) Stats() (scanned, emitted uint64) {
	return c.scanned, c.emitted
}

// searchGT returns the smallest index in the ascending slice p whose value
// exceeds v (len(p) if none) — the start of the j > i suffix of a posting
// list.
func searchGT(p []uint32, v uint32) int {
	lo, hi := 0, len(p)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
