package mask

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// Sealer provides authenticated symmetric encryption (AES-128-GCM) for the
// bid values that travel through the auctioneer to the TTP. The auctioneer
// relays these ciphertexts opaquely; only the TTP holds the key gc.
type Sealer struct {
	aead cipher.AEAD
	// nonceRand supplies nonces. Nonces need uniqueness, not secrecy, so a
	// deterministic source is acceptable for reproducible simulations; the
	// production constructor uses crypto/rand via KeyRing.
	nonceRand *rand.Rand
	counter   uint64
}

// SealedLen is the ciphertext overhead: nonce plus GCM tag.
const (
	sealNonceSize = 12
	sealTagSize   = 16
	// SealedValueLen is the total length of a sealed uint64 value.
	SealedValueLen = sealNonceSize + 8 + sealTagSize
)

// ErrSealKey is returned for invalid sealing keys.
var ErrSealKey = errors.New("mask: sealing key must be 16, 24, or 32 bytes")

// ErrCiphertext is returned when a ciphertext fails to authenticate or has
// the wrong shape.
var ErrCiphertext = errors.New("mask: invalid ciphertext")

// NewSealer returns a Sealer using the symmetric key gc. The rng seeds the
// nonce sequence; distinct Sealers in one simulation must use distinct rngs
// or keys.
func NewSealer(gc Key, rng *rand.Rand) (*Sealer, error) {
	switch len(gc) {
	case 16, 24, 32:
	default:
		return nil, fmt.Errorf("%w (got %d bytes)", ErrSealKey, len(gc))
	}
	block, err := aes.NewCipher(gc)
	if err != nil {
		return nil, fmt.Errorf("mask: new cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("mask: new GCM: %w", err)
	}
	return &Sealer{aead: aead, nonceRand: rng}, nil
}

// SealValue encrypts a uint64 (a blinded bid). The result layout is
// nonce || ciphertext+tag. Each call uses a fresh nonce, so equal plaintexts
// produce unequal ciphertexts — but note the paper still blinds bids with
// cr before sealing, because the *decrypted* values the TTP reports back
// would otherwise let the auctioneer link equal plaintexts.
func (s *Sealer) SealValue(v uint64) []byte {
	nonce := make([]byte, sealNonceSize)
	// 64-bit counter + 32 random bits: unique within a Sealer and across
	// the handful of Sealers in one experiment.
	binary.BigEndian.PutUint64(nonce[:8], s.counter)
	s.counter++
	binary.BigEndian.PutUint32(nonce[8:], s.nonceRand.Uint32())
	var pt [8]byte
	binary.BigEndian.PutUint64(pt[:], v)
	return s.aead.Seal(nonce, nonce, pt[:], nil)
}

// OpenValue decrypts and authenticates a ciphertext produced by SealValue.
func (s *Sealer) OpenValue(ct []byte) (uint64, error) {
	if len(ct) != SealedValueLen {
		return 0, fmt.Errorf("%w: length %d, want %d", ErrCiphertext, len(ct), SealedValueLen)
	}
	pt, err := s.aead.Open(nil, ct[:sealNonceSize], ct[sealNonceSize:], nil)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCiphertext, err)
	}
	return binary.BigEndian.Uint64(pt), nil
}
