package mask

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// KeyRing is the secret material the TTP generates and distributes to
// bidders at the start of an auction round. The auctioneer never sees it.
//
//   - G0:  HMAC key for location prefixes (section IV.A).
//   - GB:  per-channel HMAC keys gb_1..gb_k for bid prefixes; distinct keys
//     prevent cross-channel ciphertext comparison (section IV.C).
//   - GC:  symmetric key sealing bid values for the TTP (section IV.B).
//   - RD:  additive offset; a zero bid is remapped uniformly into [0, RD]
//     so the most frequent plaintext no longer dominates the ciphertext
//     histogram (section IV.C).
//   - CR:  multiplicative blinding; price x maps uniformly into
//     [CR·x, CR·(x+1)-1] so equal prices seal to values that decrypt
//     differently, preventing plaintext-ciphertext pair reuse after
//     charging (section V.B).
type KeyRing struct {
	G0 Key
	GB []Key
	GC Key
	RD uint64
	CR uint64
}

// Key ring size constants.
const (
	hmacKeyLen = 32
	sealKeyLen = 16
)

// Errors for key-ring parameter validation.
var (
	ErrNoChannels = errors.New("mask: key ring needs at least one channel")
	ErrBadRD      = errors.New("mask: rd must be at least 1")
	ErrBadCR      = errors.New("mask: cr must be at least 1")
)

// NewKeyRing draws a fresh key ring from crypto/rand. rd and cr are
// protocol parameters chosen by the TTP (the paper keeps them secret from
// the auctioneer along with the keys).
func NewKeyRing(channels int, rd, cr uint64) (*KeyRing, error) {
	return newKeyRingFrom(rand.Reader, channels, rd, cr)
}

// DeriveKeyRing deterministically expands a master seed into a full key
// ring using HMAC-SHA256 as a KDF. Experiments use this to make runs
// reproducible; the derived keys are still unpredictable to any party not
// holding the seed.
func DeriveKeyRing(seed []byte, channels int, rd, cr uint64) (*KeyRing, error) {
	if err := validateRingParams(channels, rd, cr); err != nil {
		return nil, err
	}
	kr := &KeyRing{
		G0: deriveKey(seed, "g0", 0, hmacKeyLen),
		GB: make([]Key, channels),
		GC: deriveKey(seed, "gc", 0, sealKeyLen),
		RD: rd,
		CR: cr,
	}
	for r := range kr.GB {
		kr.GB[r] = deriveKey(seed, "gb", uint64(r), hmacKeyLen)
	}
	return kr, nil
}

func validateRingParams(channels int, rd, cr uint64) error {
	if channels < 1 {
		return fmt.Errorf("%w (got %d)", ErrNoChannels, channels)
	}
	if rd < 1 {
		return ErrBadRD
	}
	if cr < 1 {
		return ErrBadCR
	}
	return nil
}

func newKeyRingFrom(r io.Reader, channels int, rd, cr uint64) (*KeyRing, error) {
	if err := validateRingParams(channels, rd, cr); err != nil {
		return nil, err
	}
	kr := &KeyRing{
		G0: make(Key, hmacKeyLen),
		GB: make([]Key, channels),
		GC: make(Key, sealKeyLen),
		RD: rd,
		CR: cr,
	}
	if _, err := io.ReadFull(r, kr.G0); err != nil {
		return nil, fmt.Errorf("mask: draw g0: %w", err)
	}
	if _, err := io.ReadFull(r, kr.GC); err != nil {
		return nil, fmt.Errorf("mask: draw gc: %w", err)
	}
	for i := range kr.GB {
		kr.GB[i] = make(Key, hmacKeyLen)
		if _, err := io.ReadFull(r, kr.GB[i]); err != nil {
			return nil, fmt.Errorf("mask: draw gb_%d: %w", i, err)
		}
	}
	return kr, nil
}

func deriveKey(seed []byte, label string, index uint64, n int) Key {
	mac := hmac.New(sha256.New, seed)
	mac.Write([]byte(label))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], index)
	mac.Write(buf[:])
	out := mac.Sum(nil)
	// All current key lengths fit in one SHA-256 block.
	return Key(out[:n])
}

// Channels reports the number of per-channel bid keys.
func (kr *KeyRing) Channels() int { return len(kr.GB) }

// TileKey derives the coarse-tile routing key from G0 with the same
// HMAC-SHA256 KDF used for the ring itself. Bidders mask their tile ID
// under this key so the sharded auctioneer can group submissions by digest
// equality without learning anything finer than the tile — the auctioneer
// never holds G0 or the derived key.
func (kr *KeyRing) TileKey() Key { return deriveKey(kr.G0, "tile-route", 0, hmacKeyLen) }
