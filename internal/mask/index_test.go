package mask

import (
	"math/rand"
	"testing"
)

// makeIntSet builds an IntSet directly from IDs (tests only; production
// IntSets come from Dict.InternSet, which produces exactly this shape).
func makeIntSet(ids ...uint32) IntSet {
	out := IntSet{ids: append([]uint32(nil), ids...)}
	sortIDs(out.ids)
	for _, id := range out.ids {
		out.sig |= sigBit(id)
	}
	return out
}

func collectRows(ix *Index) map[int][]uint32 {
	cur := ix.Cursor()
	out := map[int][]uint32{}
	st := ix.Stats()
	for i := 0; i < st.Bidders; i++ {
		row := cur.Row(i)
		if len(row) > 0 {
			out[i] = append([]uint32(nil), row...)
		}
	}
	return out
}

func sortedCopy(xs []uint32) []uint32 {
	out := append([]uint32(nil), xs...)
	sortIDs(out)
	return out
}

func TestIndexRowCandidates(t *testing.T) {
	// Bidder 0: fam {1,2}, rng {1,2,3}
	// Bidder 1: fam {2,3}, rng {2,3}
	// Bidder 2: fam {9},   rng {9}
	// fam(0)∩rng(1) = {2,3}∩... → candidate (0,1) via two digests, once.
	// Bidder 2 shares nothing.
	ix := NewIndex(3)
	ix.Add(makeIntSet(1, 2), makeIntSet(1, 2, 3))
	ix.Add(makeIntSet(2, 3), makeIntSet(2, 3))
	ix.Add(makeIntSet(9), makeIntSet(9))

	rows := collectRows(ix)
	if len(rows) != 1 || len(rows[0]) != 1 || rows[0][0] != 1 {
		t.Fatalf("rows = %v, want {0: [1]}", rows)
	}
}

func TestIndexRowDedupAndOrderIndependence(t *testing.T) {
	// Two bidders sharing two digests must yield one candidate, and a row
	// must reset cursor scratch so later rows see a clean bitset.
	ix := NewIndex(4)
	ix.Add(makeIntSet(5, 6), makeIntSet(5, 6))
	ix.Add(makeIntSet(5, 6), makeIntSet(5, 6))
	ix.Add(makeIntSet(5), makeIntSet(5))
	ix.Add(makeIntSet(7), makeIntSet(7))

	cur := ix.Cursor()
	if got := cur.Row(0); len(got) != 2 {
		t.Fatalf("row 0 = %v, want two distinct candidates", got)
	}
	if got := cur.Row(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("row 1 = %v, want [2]", got)
	}
	if got := cur.Row(2); len(got) != 0 {
		t.Fatalf("row 2 = %v, want empty", got)
	}
	scanned, emitted := cur.Stats()
	if emitted != 3 {
		t.Fatalf("emitted = %d, want 3", emitted)
	}
	if scanned < emitted {
		t.Fatalf("scanned = %d < emitted = %d", scanned, emitted)
	}
}

func TestIndexHotGuard(t *testing.T) {
	// Digest 1 sits on every cover; with the threshold forced down it goes
	// hot, and every row whose family contains it probes all later bidders.
	ix := NewIndex(4)
	for i := 0; i < 4; i++ {
		ix.Add(makeIntSet(1), makeIntSet(1))
	}
	ix.SetHotThreshold(2)

	st := ix.Stats()
	if st.HotDigests != 1 || st.HotRows != 4 {
		t.Fatalf("stats = %+v, want 1 hot digest, 4 hot rows", st)
	}
	cur := ix.Cursor()
	for i := 0; i < 4; i++ {
		want := 4 - i - 1
		if got := cur.Row(i); len(got) != want {
			t.Fatalf("hot row %d = %v, want %d probes", i, got, want)
		}
	}
	// Hot rows never touch posting lists.
	if scanned, _ := cur.Stats(); scanned != 0 {
		t.Fatalf("scanned = %d, want 0 on all-hot index", scanned)
	}
}

func TestIndexSealPanics(t *testing.T) {
	ix := NewIndex(1)
	ix.Add(makeIntSet(1), makeIntSet(1))
	ix.Cursor()
	for name, fn := range map[string]func(){
		"Add":             func() { ix.Add(makeIntSet(2), makeIntSet(2)) },
		"SetHotThreshold": func() { ix.SetHotThreshold(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after seal did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestIndexMatchesBruteForce pins the candidate relation: for random
// family/cover sets, Row(i) must contain j > i exactly when fam(i) and
// rng(j) share an ID (with the guard disabled), and at least those pairs
// under any hot threshold.
func TestIndexMatchesBruteForce(t *testing.T) {
	for _, hotCap := range []int{1 << 30, 3, 1} {
		rng := rand.New(rand.NewSource(42))
		const n, idSpace = 80, 50
		fams := make([]IntSet, n)
		rngs := make([]IntSet, n)
		ix := NewIndex(n)
		for i := 0; i < n; i++ {
			draw := func(k int) IntSet {
				ids := map[uint32]bool{}
				for len(ids) < k {
					ids[uint32(rng.Intn(idSpace))] = true
				}
				flat := make([]uint32, 0, k)
				for id := range ids {
					flat = append(flat, id)
				}
				return makeIntSet(flat...)
			}
			fams[i] = draw(1 + rng.Intn(4))
			rngs[i] = draw(1 + rng.Intn(6))
			ix.Add(fams[i], rngs[i])
		}
		ix.SetHotThreshold(hotCap)

		cur := ix.Cursor()
		for i := 0; i < n; i++ {
			got := map[uint32]bool{}
			for _, j := range cur.Row(i) {
				if int(j) <= i || int(j) >= n {
					t.Fatalf("hotCap %d: row %d emitted out-of-range %d", hotCap, i, j)
				}
				if got[j] {
					t.Fatalf("hotCap %d: row %d emitted duplicate %d", hotCap, i, j)
				}
				got[j] = true
			}
			for j := i + 1; j < n; j++ {
				want := fams[i].Intersects(rngs[j])
				if want && !got[uint32(j)] {
					t.Fatalf("hotCap %d: row %d missing true candidate %d", hotCap, i, j)
				}
				if hotCap == 1<<30 && !want && got[uint32(j)] {
					t.Fatalf("hotCap %d: row %d emitted spurious %d with guard off", hotCap, i, j)
				}
			}
		}
	}
}

func TestSearchGT(t *testing.T) {
	p := []uint32{2, 4, 4, 7}
	cases := []struct {
		v    uint32
		want int
	}{{0, 0}, {2, 1}, {3, 1}, {4, 3}, {6, 3}, {7, 4}, {9, 4}}
	for _, c := range cases {
		if got := searchGT(p, c.v); got != c.want {
			t.Errorf("searchGT(%v, %d) = %d, want %d", p, c.v, got, c.want)
		}
	}
	if got := searchGT(nil, 5); got != 0 {
		t.Errorf("searchGT(nil) = %d, want 0", got)
	}
}
