package mask

import (
	"sync"
	"testing"
)

// TestMaskZeroAlloc pins the tentpole property: the steady-state Mask path
// performs no heap allocation (resettable HMAC state, reused buffers).
func TestMaskZeroAlloc(t *testing.T) {
	m, err := NewMasker(testKey(9))
	if err != nil {
		t.Fatal(err)
	}
	m.Mask(1) // prime the HMAC state (first Sum may cache marshaled state)
	var sink Digest
	allocs := testing.AllocsPerRun(1000, func() {
		sink = m.Mask(12345)
	})
	if allocs != 0 {
		t.Errorf("Mask allocates %.1f times per op, want 0", allocs)
	}
	_ = sink
}

// TestCloneMatchesOriginal checks a clone digests identically and is
// independent: concurrent clones must reproduce the serial digests.
func TestCloneMatchesOriginal(t *testing.T) {
	m, err := NewMasker(testKey(7))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Digest, 256)
	for i := range want {
		want[i] = m.Mask(uint64(i) * 31)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]int, goroutines) // index of first mismatch+1, per goroutine
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := m.Clone()
			for i := range want {
				if local.Mask(uint64(i)*31) != want[i] {
					errs[g] = i + 1
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e != 0 {
			t.Errorf("goroutine %d: clone digest mismatch at input %d", g, e-1)
		}
	}
}

// TestParallelMaskAllMatchesSerial asserts the worker-pool path is
// byte-identical to MaskAll for every batch, across batch shapes and
// worker counts.
func TestParallelMaskAllMatchesSerial(t *testing.T) {
	m, err := NewMasker(testKey(3))
	if err != nil {
		t.Fatal(err)
	}
	shapes := [][]int{{}, {1}, {0, 4, 1}, {8, 8, 8, 8, 8}, {100, 1, 50, 3, 0, 7, 19}}
	for _, shape := range shapes {
		batches := make([][]uint64, len(shape))
		v := uint64(0)
		for i, n := range shape {
			batches[i] = make([]uint64, n)
			for j := range batches[i] {
				batches[i][j] = v
				v += 137
			}
		}
		want := make([][]Digest, len(batches))
		for i, vs := range batches {
			want[i] = m.MaskAll(vs)
		}
		for _, workers := range []int{0, 1, 2, 3, 16} {
			got := m.ParallelMaskAll(batches, workers)
			if len(got) != len(want) {
				t.Fatalf("workers=%d: %d batches, want %d", workers, len(got), len(want))
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("workers=%d batch %d: %d digests, want %d", workers, i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Errorf("workers=%d batch %d digest %d differs", workers, i, j)
					}
				}
			}
		}
	}
}

// TestAppendDigestsMatchesDigests checks the allocation-lean collector
// returns the same members as Digests.
func TestAppendDigestsMatchesDigests(t *testing.T) {
	m, err := NewMasker(testKey(5))
	if err != nil {
		t.Fatal(err)
	}
	s := m.MaskSet([]uint64{1, 2, 3, 4, 5})
	prefixSlice := []Digest{m.Mask(99)}
	got := s.AppendDigests(prefixSlice)
	if len(got) != 6 {
		t.Fatalf("appended length %d, want 6", len(got))
	}
	if got[0] != m.Mask(99) {
		t.Error("AppendDigests clobbered existing dst prefix")
	}
	seen := map[Digest]bool{}
	for _, d := range got[1:] {
		seen[d] = true
	}
	for _, d := range s.Digests() {
		if !seen[d] {
			t.Errorf("digest %s missing from AppendDigests output", d)
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	cases := []struct{ req, items, wantMax, wantMin int }{
		{0, 100, 1 << 30, 1}, // GOMAXPROCS-dependent, just bounded below
		{-3, 10, 10, 1},
		{5, 2, 2, 2},
		{5, 0, 1, 1},
		{3, 100, 3, 3},
	}
	for _, c := range cases {
		got := Workers(c.req, c.items)
		if got < c.wantMin || got > c.wantMax {
			t.Errorf("Workers(%d, %d) = %d, want in [%d, %d]", c.req, c.items, got, c.wantMin, c.wantMax)
		}
	}
}
