// Package mask provides the cryptographic layer of LPPA: keyed masking of
// numericalized prefixes with HMAC-SHA256, fixed-size digest sets with
// padding (so set cardinality leaks nothing), and authenticated symmetric
// sealing (AES-GCM) for the bid ciphertexts that only the TTP can open.
//
// The security property the protocol relies on is that HMAC under an
// unknown key is a pseudorandom function: the auctioneer can test equality
// of masked prefixes (and therefore evaluate prefix-membership range
// predicates) but learns nothing about the underlying values beyond the
// outcomes of those equality tests.
package mask

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"math/rand"
	"sort"
)

// DigestSize is the size of a masked prefix digest in bytes. Digests are
// truncated HMAC-SHA256 outputs; 16 bytes (128 bits) keeps collision
// probability negligible at auction scale while halving transcript size.
const DigestSize = 16

// Digest is a masked (keyed-hashed) numericalized prefix. Digest is
// comparable and therefore usable as a map key, which the auctioneer's set
// intersections depend on.
type Digest [DigestSize]byte

// String renders the digest in hex for logs and debugging.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:]) }

// Key is an HMAC key. Keys are distributed by the TTP to bidders and are
// never revealed to the auctioneer.
type Key []byte

// ErrShortKey is returned when a key is too short to be credible.
var ErrShortKey = errors.New("mask: key shorter than 16 bytes")

// MinKeyLen is the minimum accepted HMAC key length in bytes.
const MinKeyLen = 16

// Validate checks the key length.
func (k Key) Validate() error {
	if len(k) < MinKeyLen {
		return fmt.Errorf("%w (got %d bytes)", ErrShortKey, len(k))
	}
	return nil
}

// Masker computes digests of numericalized prefixes under a fixed key.
//
// Concurrency contract: a Masker keeps a resettable HMAC state and reuses
// internal encoding and digest buffers across calls, so the steady-state
// Mask path performs no heap allocation. That state makes a single Masker
// NOT safe for concurrent use: goroutines must not share one. Use Clone to
// obtain an independent Masker over the same key for each goroutine (the
// worker-pool paths, e.g. ParallelMaskAll, do exactly that). Construction
// is still cheap — one HMAC key schedule.
type Masker struct {
	key Key
	mac hash.Hash         // resettable HMAC-SHA256 state
	buf [8]byte           // fixed-width message encoding, reused
	sum [sha256.Size]byte // full HMAC output scratch, reused
}

// NewMasker returns a Masker for the given key.
func NewMasker(key Key) (*Masker, error) {
	if err := key.Validate(); err != nil {
		return nil, err
	}
	return &Masker{key: key, mac: hmac.New(sha256.New, key)}, nil
}

// Clone returns an independent Masker over the same key, for per-goroutine
// use. Digests from a clone are identical to the original's.
func (m *Masker) Clone() *Masker {
	return &Masker{key: m.key, mac: hmac.New(sha256.New, m.key)}
}

// Mask returns H_g(v) = HMAC_g(O(v)): the digest of a numericalized prefix
// v. The message is the fixed-width big-endian encoding of v, so all masked
// prefixes have identical message length (the paper requires random padding
// digests to be indistinguishable by length).
func (m *Masker) Mask(numericalized uint64) Digest {
	m.mac.Reset()
	binary.BigEndian.PutUint64(m.buf[:], numericalized)
	m.mac.Write(m.buf[:])
	sum := m.mac.Sum(m.sum[:0])
	var d Digest
	copy(d[:], sum)
	return d
}

// MaskAll masks every numericalized prefix in vs.
func (m *Masker) MaskAll(vs []uint64) []Digest {
	out := make([]Digest, len(vs))
	for i, v := range vs {
		out[i] = m.Mask(v)
	}
	return out
}

// Set is an unordered collection of digests supporting O(1) membership.
// The zero value is an empty set ready to use.
//
// Alongside the membership map the set keeps its members in a flat
// insertion-order slice, so bulk consumers (the auctioneer's interner,
// batch assemblers, wire encoders) can scan members sequentially instead
// of paying Go map iteration per element. The two views always hold the
// same members; Add and PadTo maintain both.
type Set struct {
	members map[Digest]struct{}
	order   []Digest
}

// NewSet builds a Set from digests, dropping duplicates.
func NewSet(ds []Digest) Set {
	s := Set{members: make(map[Digest]struct{}, len(ds)), order: make([]Digest, 0, len(ds))}
	for _, d := range ds {
		if _, dup := s.members[d]; dup {
			continue
		}
		s.members[d] = struct{}{}
		s.order = append(s.order, d)
	}
	return s
}

// Len reports the number of distinct digests in the set.
func (s Set) Len() int { return len(s.members) }

// Contains reports whether d is in the set.
func (s Set) Contains(d Digest) bool {
	_, ok := s.members[d]
	return ok
}

// Add inserts d into the set.
func (s *Set) Add(d Digest) {
	if s.members == nil {
		s.members = make(map[Digest]struct{})
	}
	if _, dup := s.members[d]; dup {
		return
	}
	s.members[d] = struct{}{}
	s.order = append(s.order, d)
}

// Digests returns the members in unspecified order.
func (s Set) Digests() []Digest {
	return s.AppendDigests(make([]Digest, 0, len(s.members)))
}

// AppendDigests appends the members to dst (in unspecified order) and
// returns the extended slice. Batch assemblers (e.g. the auctioneer's
// charge-request builder) use it to collect many sets into one flat
// allocation.
func (s Set) AppendDigests(dst []Digest) []Digest {
	return append(dst, s.order...)
}

// SortedDigests returns the members in lexicographic byte order. Wire
// encoders use it so serialized sets are byte-stable across runs (map
// iteration order is randomized per process); sorting reveals nothing an
// unordered dump would not, since digests are already key-dependent
// pseudorandom values.
func (s Set) SortedDigests() []Digest {
	ds := s.Digests()
	SortDigests(ds)
	return ds
}

// SortDigests sorts ds in place in lexicographic byte order.
func SortDigests(ds []Digest) {
	sort.Slice(ds, func(i, j int) bool {
		return bytes.Compare(ds[i][:], ds[j][:]) < 0
	})
}

// Intersects reports whether s and other share at least one digest. This is
// the only operation the auctioneer performs on masked location and bid
// data: prefix membership verification reduces range queries to exactly
// this check.
func (s Set) Intersects(other Set) bool {
	small, large := s, other
	if small.Len() > large.Len() {
		small, large = large, small
	}
	for d := range small.members {
		if large.Contains(d) {
			return true
		}
	}
	return false
}

// PadTo grows the set to exactly target members by inserting random digests
// drawn from rng. Padding hides the true cardinality of range-prefix sets,
// which would otherwise leak bid magnitude (section IV.C of the paper: all
// range covers are padded to 2w-2 elements). Random digests collide with
// genuine HMAC outputs only with probability 2^-128 per draw, so padding
// does not perturb intersection results. PadTo is a no-op if the set
// already has at least target members.
func (s *Set) PadTo(target int, rng *rand.Rand) {
	if s.members == nil {
		s.members = make(map[Digest]struct{}, target)
	}
	for len(s.members) < target {
		var d Digest
		for i := range d {
			d[i] = byte(rng.Intn(256))
		}
		if _, dup := s.members[d]; dup {
			continue
		}
		s.members[d] = struct{}{}
		s.order = append(s.order, d)
	}
}

// MaskSet masks all numericalized prefixes in vs and collects them into a
// Set.
func (m *Masker) MaskSet(vs []uint64) Set {
	return NewSet(m.MaskAll(vs))
}
