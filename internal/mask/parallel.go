package mask

import (
	"runtime"
	"sync"
)

// Workers normalizes a worker-count knob: values below 1 mean "use one
// worker per available CPU" (runtime.GOMAXPROCS), and the count is capped
// at the number of independent work items so no goroutine idles.
func Workers(requested, items int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelMaskAll masks every batch of numericalized prefixes under the
// masker's key, sharding batches across at most workers goroutines. Each
// worker runs on its own Clone of the masker, so the zero-alloc steady
// state is preserved per goroutine. Output order is positional — result[i]
// is exactly MaskAll(batches[i]) — and therefore independent of the worker
// count and of goroutine scheduling. workers ≤ 1 runs serially on the
// receiver itself.
func (m *Masker) ParallelMaskAll(batches [][]uint64, workers int) [][]Digest {
	out := make([][]Digest, len(batches))
	workers = Workers(workers, len(batches))
	if workers <= 1 {
		for i, vs := range batches {
			out[i] = m.MaskAll(vs)
		}
		return out
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := m.Clone()
			for i := w; i < len(batches); i += workers {
				out[i] = local.MaskAll(batches[i])
			}
		}(w)
	}
	wg.Wait()
	return out
}
