package ttp

import (
	"math/rand"
	"testing"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

func params() core.Params {
	return core.Params{Channels: 3, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
}

func setup(t *testing.T, seed int64) (*TTP, *mask.KeyRing, *core.BidEncoder, *rand.Rand) {
	t.Helper()
	p := params()
	ring, err := mask.DeriveKeyRing([]byte("ttp-test"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	trusted, err := FromRing(p, ring, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := core.NewBidEncoder(p, ring, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	return trusted, ring, enc, rng
}

// request builds a charge request for the bid on channel 0 of a submission.
func request(sub *core.BidSubmission, bidder int) core.ChargeRequest {
	cb := sub.Channels[0]
	return core.ChargeRequest{
		Bidder:  bidder,
		Channel: 0,
		Sealed:  cb.Sealed,
		Family:  cb.Family.Digests(),
	}
}

func TestProcessValidPositiveBid(t *testing.T) {
	trusted, _, enc, rng := setup(t, 1)
	p := params()
	for _, price := range []uint64{1, 37, p.BMax} {
		bids := make([]uint64, p.Channels)
		bids[0] = price
		sub, err := enc.Encode(bids, rng)
		if err != nil {
			t.Fatal(err)
		}
		res := trusted.Process(request(sub, 4))
		if res.Err != nil {
			t.Fatalf("price %d: %v", price, res.Err)
		}
		if !res.Valid {
			t.Fatalf("price %d marked invalid", price)
		}
		if res.Price != price {
			t.Fatalf("unblinded price = %d, want %d", res.Price, price)
		}
		if res.Bidder != 4 || res.Channel != 0 {
			t.Fatalf("result misattributed: %+v", res)
		}
	}
}

func TestProcessVoidsTrueZero(t *testing.T) {
	trusted, _, enc, rng := setup(t, 2)
	p := params()
	for trial := 0; trial < 20; trial++ {
		sub, err := enc.Encode(make([]uint64, p.Channels), rng)
		if err != nil {
			t.Fatal(err)
		}
		res := trusted.Process(request(sub, 0))
		if res.Valid {
			t.Fatal("zero bid charged as valid")
		}
		if res.Err != nil {
			t.Fatalf("zero bid flagged as violation: %v", res.Err)
		}
	}
}

func TestProcessVoidsDisguisedZero(t *testing.T) {
	// Disguised zeros carry a true sealed value in [0, rd]: TTP must void
	// them without charging.
	p := params()
	ring, err := mask.DeriveKeyRing([]byte("ttp-test"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	trusted, err := FromRing(p, ring, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := core.NewDisguiseSampler(core.DisguisePolicy{P0: 0, Decay: 1}, p.BMax)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	enc, err := core.NewBidEncoder(p, ring, sampler, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		sub, err := enc.Encode(make([]uint64, p.Channels), rng)
		if err != nil {
			t.Fatal(err)
		}
		res := trusted.Process(request(sub, 0))
		if res.Valid {
			t.Fatal("disguised zero charged as valid")
		}
		if res.Err != nil {
			t.Fatalf("disguised zero treated as violation: %v", res.Err)
		}
	}
}

func TestProcessRejectsTamperedCiphertext(t *testing.T) {
	trusted, _, enc, rng := setup(t, 5)
	p := params()
	bids := make([]uint64, p.Channels)
	bids[0] = 10
	sub, err := enc.Encode(bids, rng)
	if err != nil {
		t.Fatal(err)
	}
	req := request(sub, 0)
	req.Sealed = append([]byte(nil), req.Sealed...)
	req.Sealed[0] ^= 0xff
	res := trusted.Process(req)
	if res.Err == nil || res.Valid {
		t.Error("tampered ciphertext not rejected")
	}
}

func TestProcessRejectsPricePrefixMismatch(t *testing.T) {
	// A cheating bidder pairs a low sealed price with a high masked
	// family. Simulate by swapping the family from a different encoding.
	trusted, _, enc, rng := setup(t, 6)
	p := params()
	low := make([]uint64, p.Channels)
	low[0] = 3
	high := make([]uint64, p.Channels)
	high[0] = 90
	subLow, err := enc.Encode(low, rng)
	if err != nil {
		t.Fatal(err)
	}
	subHigh, err := enc.Encode(high, rng)
	if err != nil {
		t.Fatal(err)
	}
	req := core.ChargeRequest{
		Bidder:  0,
		Channel: 0,
		Sealed:  subLow.Channels[0].Sealed,            // pays 3
		Family:  subHigh.Channels[0].Family.Digests(), // auctioned as 90
	}
	res := trusted.Process(req)
	if res.Err == nil || res.Valid {
		t.Error("price/prefix mismatch not detected")
	}
}

func TestProcessRejectsBadChannel(t *testing.T) {
	trusted, _, enc, rng := setup(t, 7)
	p := params()
	bids := make([]uint64, p.Channels)
	bids[0] = 10
	sub, err := enc.Encode(bids, rng)
	if err != nil {
		t.Fatal(err)
	}
	req := request(sub, 0)
	req.Channel = p.Channels + 5
	res := trusted.Process(req)
	if res.Err == nil {
		t.Error("bad channel accepted")
	}
}

func TestProcessBatchOrder(t *testing.T) {
	trusted, _, enc, rng := setup(t, 8)
	p := params()
	var reqs []core.ChargeRequest
	wantPrices := []uint64{10, 0, 55}
	for i, price := range wantPrices {
		bids := make([]uint64, p.Channels)
		bids[0] = price
		sub, err := enc.Encode(bids, rng)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, request(sub, i))
	}
	results := trusted.ProcessBatch(reqs)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, res := range results {
		if res.Bidder != i {
			t.Errorf("result %d attributed to bidder %d", i, res.Bidder)
		}
		if wantPrices[i] == 0 {
			if res.Valid {
				t.Errorf("zero bid %d valid", i)
			}
		} else if !res.Valid || res.Price != wantPrices[i] {
			t.Errorf("result %d = %+v, want price %d", i, res, wantPrices[i])
		}
	}
}

func TestNewDrawsFreshRing(t *testing.T) {
	p := params()
	a, err := New(p, 5, 8, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(p, 5, 8, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Ring().G0) == string(b.Ring().G0) {
		t.Error("two TTPs drew identical keys")
	}
	if a.Ring().RD != 5 || a.Ring().CR != 8 {
		t.Error("blinding parameters not stored")
	}
}

func TestFromRingValidatesParams(t *testing.T) {
	ring, err := mask.DeriveKeyRing([]byte("x"), 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := core.Params{Channels: 0, Lambda: 1, MaxX: 1, MaxY: 1, BMax: 1}
	if _, err := FromRing(bad, ring, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad params accepted")
	}
}

// geo import is used indirectly through core's API in other packages; keep
// a reference here to document the protocol coordinate domain in one test.
func TestParamsCoordinateDomain(t *testing.T) {
	p := params()
	pt := geo.Point{X: p.MaxX, Y: p.MaxY}
	if pt.X != 99 || pt.Y != 99 {
		t.Fatal("unexpected domain")
	}
}

func TestValidateAward(t *testing.T) {
	trusted, _, enc, rng := setup(t, 9)
	p := params()
	pos := make([]uint64, p.Channels)
	pos[0] = 25
	sub, err := enc.Encode(pos, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !trusted.ValidateAward(sub.Channels[0].Sealed) {
		t.Error("positive bid judged invalid")
	}
	zero, err := enc.Encode(make([]uint64, p.Channels), rng)
	if err != nil {
		t.Fatal(err)
	}
	if trusted.ValidateAward(zero.Channels[0].Sealed) {
		t.Error("zero bid judged valid")
	}
	if trusted.ValidateAward([]byte("garbage")) {
		t.Error("garbage ciphertext judged valid")
	}
}

func TestProcessSecondPriceChargesRunnerUp(t *testing.T) {
	trusted, _, enc, rng := setup(t, 10)
	p := params()
	winner := make([]uint64, p.Channels)
	winner[0] = 80
	runner := make([]uint64, p.Channels)
	runner[0] = 35
	ws, err := enc.Encode(winner, rng)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := enc.Encode(runner, rng)
	if err != nil {
		t.Fatal(err)
	}
	req := request(ws, 0)
	req.RunnerUpSealed = rs.Channels[0].Sealed
	res := trusted.Process(req)
	if res.Err != nil || !res.Valid {
		t.Fatalf("res = %+v", res)
	}
	if res.Price != 35 {
		t.Errorf("second price = %d, want 35", res.Price)
	}
}

func TestProcessSecondPriceZeroRunnerUpIsFree(t *testing.T) {
	trusted, _, enc, rng := setup(t, 11)
	p := params()
	winner := make([]uint64, p.Channels)
	winner[0] = 80
	ws, err := enc.Encode(winner, rng)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := enc.Encode(make([]uint64, p.Channels), rng)
	if err != nil {
		t.Fatal(err)
	}
	req := request(ws, 0)
	req.RunnerUpSealed = zs.Channels[0].Sealed
	res := trusted.Process(req)
	if !res.Valid || res.Price != 0 {
		t.Fatalf("res = %+v, want valid free win", res)
	}
}

func TestProcessSecondPriceTamperedRunnerUp(t *testing.T) {
	trusted, _, enc, rng := setup(t, 12)
	p := params()
	winner := make([]uint64, p.Channels)
	winner[0] = 80
	ws, err := enc.Encode(winner, rng)
	if err != nil {
		t.Fatal(err)
	}
	req := request(ws, 0)
	req.RunnerUpSealed = []byte("not a ciphertext")
	res := trusted.Process(req)
	if res.Err == nil || res.Valid {
		t.Error("tampered runner-up accepted")
	}
}

func TestProcessRejectsOverBMaxPrice(t *testing.T) {
	// A cheating bidder seals a price above bmax: the TTP must flag it
	// even though the ciphertext authenticates.
	p := params()
	ring, err := mask.DeriveKeyRing([]byte("ttp-test"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	trusted, err := FromRing(p, ring, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := mask.NewSealer(ring.GC, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	// scaled = cr·(bmax + rd + 3): displayed > rd + bmax.
	scaled := ring.CR * (p.BMax + ring.RD + 3)
	req := core.ChargeRequest{Bidder: 0, Channel: 0, Sealed: rogue.SealValue(scaled)}
	res := trusted.Process(req)
	if res.Err == nil || res.Valid {
		t.Error("over-bmax sealed price accepted")
	}
	// Same via the runner-up path.
	enc, err := core.NewBidEncoder(p, ring, nil, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	bids := make([]uint64, p.Channels)
	bids[0] = 10
	sub, err := enc.Encode(bids, rand.New(rand.NewSource(16)))
	if err != nil {
		t.Fatal(err)
	}
	req2 := request(sub, 0)
	req2.RunnerUpSealed = rogue.SealValue(scaled)
	res2 := trusted.Process(req2)
	if res2.Err == nil || res2.Valid {
		t.Error("over-bmax runner-up price accepted")
	}
}
