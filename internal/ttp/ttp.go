// Package ttp implements the periodically-available Trusted Third Party of
// LPPA. The TTP generates and escrows all secret material (it is the only
// party besides the bidders holding the keys), and at charging time opens
// the winners' sealed bids, unblinds them, voids disguised zeros, verifies
// that the winning price matches the masked prefixes used during the
// auction, and returns first-price charges to the auctioneer.
//
// Batch processing (ProcessBatch) models the paper's section V.C.2: the
// auctioneer accumulates several auctions' worth of charge requests and
// submits them during one TTP online window.
package ttp

import (
	"fmt"
	"math/rand"

	"lppa/internal/core"
	"lppa/internal/mask"
	"lppa/internal/prefix"
)

// TTP holds the escrowed key ring for one auction round.
type TTP struct {
	params Params
	ring   *mask.KeyRing
	sealer *mask.Sealer
}

// Params mirrors core.Params; aliased so callers pass one value to both.
type Params = core.Params

// New creates a TTP for the round's parameters, drawing a fresh key ring
// from crypto/rand. rd and cr are the blinding parameters the TTP chooses
// and keeps secret from the auctioneer.
func New(params Params, rd, cr uint64, rng *rand.Rand) (*TTP, error) {
	ring, err := mask.NewKeyRing(params.Channels, rd, cr)
	if err != nil {
		return nil, fmt.Errorf("ttp: key ring: %w", err)
	}
	return FromRing(params, ring, rng)
}

// FromRing creates a TTP around an existing key ring (experiments derive
// rings deterministically).
func FromRing(params Params, ring *mask.KeyRing, rng *rand.Rand) (*TTP, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	sealer, err := mask.NewSealer(ring.GC, rng)
	if err != nil {
		return nil, fmt.Errorf("ttp: sealer: %w", err)
	}
	return &TTP{params: params, ring: ring, sealer: sealer}, nil
}

// Ring exposes the key ring for distribution to bidders. In the deployed
// system this happens over a secure channel the auctioneer cannot read;
// in-process callers just share the pointer.
func (t *TTP) Ring() *mask.KeyRing { return t.ring }

// ChargeResult is the TTP's verdict on one awarded channel.
type ChargeResult struct {
	Bidder  int
	Channel int
	// Valid is false when the winning bid was a (possibly disguised)
	// zero: the award is void and the channel goes unsold this round.
	Valid bool
	// Price is the first-price charge (the true bid) for valid awards.
	Price uint64
	// Err records a protocol violation: unopenable ciphertext or a
	// price/prefix mismatch (a bidder showing one price to the auction
	// and another to the cashier). Violations void the award.
	Err error
}

// Process opens and adjudicates a single charge request.
func (t *TTP) Process(req core.ChargeRequest) ChargeResult {
	res := ChargeResult{Bidder: req.Bidder, Channel: req.Channel}
	scaled, err := t.sealer.OpenValue(req.Sealed)
	if err != nil {
		res.Err = fmt.Errorf("ttp: open sealed bid: %w", err)
		return res
	}
	displayed := scaled / t.ring.CR
	if displayed <= t.ring.RD {
		// A true zero (mapped into [0, rd]) won: notify the auctioneer
		// the award is invalid (section V.B).
		return res
	}
	price := displayed - t.ring.RD
	if price > t.params.BMax {
		res.Err = fmt.Errorf("ttp: unblinded price %d exceeds bmax %d", price, t.params.BMax)
		return res
	}
	if err := t.verifyFamily(req.Channel, scaled, req.Family); err != nil {
		res.Err = err
		return res
	}
	if req.RunnerUpSealed != nil {
		// Second-price charging: the winner pays the runner-up's true
		// bid. A runner-up that unblinds to a zero (genuine or disguised)
		// clears the channel for free — the winner faced no real
		// competition.
		ruScaled, err := t.sealer.OpenValue(req.RunnerUpSealed)
		if err != nil {
			res.Err = fmt.Errorf("ttp: open runner-up bid: %w", err)
			return res
		}
		ruDisplayed := ruScaled / t.ring.CR
		switch {
		case ruDisplayed <= t.ring.RD:
			price = 0
		default:
			price = ruDisplayed - t.ring.RD
			if price > t.params.BMax {
				res.Err = fmt.Errorf("ttp: runner-up price %d exceeds bmax %d", price, t.params.BMax)
				return res
			}
		}
	}
	res.Valid = true
	res.Price = price
	return res
}

// verifyFamily checks that the masked prefix family submitted during the
// auction is exactly the family of the sealed (true) value — i.e. the
// bidder's auction-time ordering claim matches the price it is charged.
// Disguised zeros never reach this check (they fail the rd test first).
func (t *TTP) verifyFamily(channel int, scaled uint64, family []mask.Digest) error {
	if channel < 0 || channel >= t.ring.Channels() {
		return fmt.Errorf("ttp: channel %d out of range", channel)
	}
	masker, err := mask.NewMasker(t.ring.GB[channel])
	if err != nil {
		return fmt.Errorf("ttp: masker: %w", err)
	}
	w := prefix.WidthFor(t.params.ScaledMax(t.ring))
	want := masker.MaskAll(prefix.Numericalized(prefix.Family(scaled, w)))
	if len(family) != len(want) {
		return fmt.Errorf("ttp: family has %d digests, want %d", len(family), len(want))
	}
	got := mask.NewSet(family)
	for _, d := range want {
		if !got.Contains(d) {
			return fmt.Errorf("ttp: price/prefix mismatch: auction family does not match sealed price")
		}
	}
	return nil
}

// ValidateAward reports whether a sealed bid is a genuine positive bid —
// i.e. not a (possibly disguised) zero. The auctioneer consults this
// during allocation so void awards can be skipped; the TTP reveals a
// single bit and no price. Unopenable ciphertexts count as invalid.
func (t *TTP) ValidateAward(sealed []byte) bool {
	scaled, err := t.sealer.OpenValue(sealed)
	if err != nil {
		return false
	}
	return scaled/t.ring.CR > t.ring.RD
}

// ProcessBatch adjudicates a batch of requests in order (the paper's
// batched TTP interaction).
func (t *TTP) ProcessBatch(reqs []core.ChargeRequest) []ChargeResult {
	out := make([]ChargeResult, len(reqs))
	for i, req := range reqs {
		out[i] = t.Process(req)
	}
	return out
}
