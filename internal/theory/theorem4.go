package theory

import "fmt"

// Theorem4Bits returns the paper's predicted total transmission cost of the
// advanced bid submission protocol in bits:
//
//	h · k · N · (3w − 1)(w + 1)
//
// where w is the bit length of a (blinded) bid, k the channel count, N the
// bidder count, and h the ratio of HMAC-output length to prefix length.
// Per bidder and channel the protocol ships a (w+1)-digest family plus a
// (2w−2)-digest padded range cover — (3w−1) digests of h·(w+1) bits each.
func Theorem4Bits(hmacOutputBits, w, k, n int) (float64, error) {
	if hmacOutputBits < 1 || w < 1 || k < 1 || n < 1 {
		return 0, fmt.Errorf("theory: bad arguments hmac=%d w=%d k=%d n=%d", hmacOutputBits, w, k, n)
	}
	h := float64(hmacOutputBits) / float64(w+1)
	return h * float64(k) * float64(n) * float64(3*w-1) * float64(w+1), nil
}

// Theorem4DigestCount returns the digest count behind the formula:
// k·N·(3w−1). Multiplying by the digest size must reproduce Theorem4Bits.
func Theorem4DigestCount(w, k, n int) int {
	return k * n * (3*w - 1)
}
