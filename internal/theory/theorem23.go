package theory

import (
	"fmt"
	"math/rand"
	"sort"
)

// Theorem2 returns the paper's closed-form probability of *no location
// information leakage* when the auctioneer marks a channel available to
// the holders of the t largest prices: all t selections are disguised
// zeros. bN is the largest true bid, m > t the number of zeros.
//
// The formula is transcribed verbatim; the paper's second term treats the
// tie group approximately (it assumes exactly one tie slot matters), so
// MonteCarloTheorem2 — which simulates the selection exactly — can deviate
// by a few percent in tie-heavy configurations. The experiment harness
// reports both.
func Theorem2(d Dist, bN, m, t int) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if bN < 1 || bN >= len(d) {
		return 0, fmt.Errorf("theory: bN %d out of [1,%d]", bN, len(d)-1)
	}
	if t < 1 || m <= t {
		return 0, fmt.Errorf("theory: need m > t ≥ 1, got m=%d t=%d", m, t)
	}
	above := d.tailSum(bN + 1) // replacement strictly above bN
	atOrBelow := d.headSum(bN) // ≤ bN
	below := d.headSum(bN - 1) // < bN
	pBN := d[bN]

	// First term: at least t zeros strictly above bN.
	first := 0.0
	for k := t; k <= m; k++ {
		first += binom(m, k) * pow(above, k) * pow(atOrBelow, m-k)
	}
	// Second term: k < t zeros strictly above, j ≥ t−k zeros tied at bN,
	// original bN loses the tie-break with weight (j−1)/j.
	second := 0.0
	for k := 0; k <= t-1; k++ {
		inner := 0.0
		for j := t - k; j <= m-k; j++ {
			inner += (float64(j-1) / float64(j)) * binom(m-k, j) * pow(below, m-k-j) * pow(pBN, j)
		}
		second += binom(m, k) * pow(above, k) * inner
	}
	return first + second, nil
}

// MonteCarloTheorem2 simulates the t-largest selection exactly: the m
// zeros are replaced i.i.d. from d, pooled with the true bids (of which
// bN is the largest; the remaining true bids are below and never reach the
// top set when it contains t candidates above them), and the auctioneer
// picks t bids, breaking value ties uniformly. No leakage ⇔ every selected
// bid is a zero.
func MonteCarloTheorem2(d Dist, bN, m, t, trials int, rng *rand.Rand) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if bN < 1 || bN >= len(d) || t < 1 || m <= t || trials < 1 {
		return 0, fmt.Errorf("theory: bad arguments bN=%d m=%d t=%d trials=%d", bN, m, t, trials)
	}
	noLeak := 0
	for trial := 0; trial < trials; trial++ {
		above, tie := 0, 0
		for z := 0; z < m; z++ {
			v := d.sample(rng)
			switch {
			case v > bN:
				above++
			case v == bN:
				tie++
			}
		}
		switch {
		case above >= t:
			noLeak++
		case above+tie >= t:
			// Need the remaining t−above slots filled from the tie group
			// of (tie zeros + 1 original bN), uniformly without the
			// original: P = C(tie, t−above)/C(tie+1, t−above).
			need := t - above
			if float64(rng.Int63())/float64(1<<63) < hypergeomAllZeros(tie, need) {
				noLeak++
			}
		}
	}
	return float64(noLeak) / float64(trials), nil
}

// hypergeomAllZeros returns the probability that drawing need items
// uniformly from a pool of tie zeros plus one original picks only zeros.
func hypergeomAllZeros(tie, need int) float64 {
	return binom(tie, need) / binom(tie+1, need)
}

// Theorem3 returns the paper's closed-form expectation E[μ] of the number
// of *true* (non-zero) bids among the users bidding the t largest prices,
// under the uniform replacement distribution p = 1/(1+bmax). bids must be
// the sorted non-decreasing true bid values b_1 ≤ … ≤ b_{N−m} (zeros
// excluded), m the zero count.
//
// Transcribed verbatim; the paper's drawer-counting argument is an
// approximation (see EXPERIMENTS.md), so the Monte-Carlo companion is the
// ground truth for the harness.
func Theorem3(bmax int, bids []int, m, t int) (float64, error) {
	if bmax < 1 || m < 1 || t < 1 || len(bids) == 0 {
		return 0, fmt.Errorf("theory: bad arguments bmax=%d m=%d t=%d bids=%d", bmax, m, t, len(bids))
	}
	if !sort.IntsAreSorted(bids) {
		return 0, fmt.Errorf("theory: bids must be sorted ascending")
	}
	p := 1 / float64(bmax+1)
	total := 0.0
	for mu := 1; mu <= t && mu <= len(bids); mu++ {
		bTop := bids[len(bids)-mu] // b_{N−μ} in the paper's indexing
		outer := binom(bmax-bTop-mu, t-mu)
		if outer == 0 {
			continue
		}
		inner := 0.0
		for j := t - mu; j <= m; j++ {
			comb := 0.0
			for i := 0; i <= j-t+mu; i++ {
				comb += binom(j, i) * binom(i+mu-1, mu-1) * binom(j-i-1, t-mu-1)
			}
			inner += binom(m, j) * comb * pow(float64(1+bTop), m-j)
		}
		total += float64(mu) * pow(p, m) * outer * inner
	}
	return total, nil
}

// MonteCarloTheorem3 estimates E[μ] by simulation: replace the m zeros
// uniformly over [0, bmax], pool with the true bids, select every user
// whose bid belongs to the t largest *values* present (the paper selects
// "all the users bidding t largest price"), and count selected true bids.
func MonteCarloTheorem3(bmax int, bids []int, m, t, trials int, rng *rand.Rand) (float64, error) {
	if bmax < 1 || m < 1 || t < 1 || len(bids) == 0 || trials < 1 {
		return 0, fmt.Errorf("theory: bad arguments")
	}
	d := UniformDist(bmax)
	var sum float64
	zeros := make([]int, m)
	for trial := 0; trial < trials; trial++ {
		for z := range zeros {
			zeros[z] = d.sample(rng)
		}
		// Collect the distinct values present, pick the t largest values,
		// then count true bids at or above the smallest selected value.
		values := map[int]bool{}
		for _, b := range bids {
			values[b] = true
		}
		for _, z := range zeros {
			values[z] = true
		}
		distinct := make([]int, 0, len(values))
		for v := range values {
			distinct = append(distinct, v)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(distinct)))
		cut := distinct[min(t, len(distinct))-1]
		mu := 0
		for _, b := range bids {
			if b >= cut {
				mu++
			}
		}
		sum += float64(mu)
	}
	return sum / float64(trials), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
