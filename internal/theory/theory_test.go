package theory

import (
	"math"
	"math/rand"
	"testing"
)

func TestDistConstructorsValid(t *testing.T) {
	if err := UniformDist(100).Validate(); err != nil {
		t.Error(err)
	}
	if err := GeometricDist(100, 0.7, 0.95).Validate(); err != nil {
		t.Error(err)
	}
	g := GeometricDist(50, 0.6, 0.9)
	if math.Abs(g[0]-0.6) > 1e-12 {
		t.Errorf("p0 = %f", g[0])
	}
	for r := 2; r <= 50; r++ {
		if g[r] > g[r-1]+1e-15 {
			t.Fatalf("geometric dist not non-increasing at %d", r)
		}
	}
}

func TestDistValidateRejects(t *testing.T) {
	if (Dist{1.0}).Validate() == nil {
		t.Error("too-short dist accepted")
	}
	if (Dist{0.5, -0.1, 0.6}).Validate() == nil {
		t.Error("negative mass accepted")
	}
	if (Dist{0.5, 0.1}).Validate() == nil {
		t.Error("non-normalized dist accepted")
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {0, 0, 1}, {4, 7, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := binom(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("C(%d,%d) = %f, want %f", c.n, c.k, got, c.want)
		}
	}
	// Large values stay finite and sane: C(300,150) ≈ 9.38e88.
	big := binom(300, 150)
	if math.IsInf(big, 1) || big < 1e88 || big > 1e89 {
		t.Errorf("C(300,150) = %e", big)
	}
}

func TestTheorem1DegenerateCases(t *testing.T) {
	d := UniformDist(10)
	// m = 0: no zeros, zero can never win: p_f = 1.
	got, err := Theorem1(d, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("m=0: p_f = %f, want 1", got)
	}
	// bN = bmax: a zero can only tie, never exceed.
	got, err = Theorem1(d, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got >= 1 {
		t.Errorf("bN=bmax: p_f = %f, want in (0,1)", got)
	}
}

func TestTheorem1MatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct {
		d     Dist
		bN, m int
	}{
		{UniformDist(20), 15, 5},
		{UniformDist(20), 19, 10},
		{GeometricDist(20, 0.5, 0.9), 10, 8},
		{GeometricDist(50, 0.2, 0.8), 30, 20},
	} {
		closed, err := Theorem1(cfg.d, cfg.bN, cfg.m)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarloTheorem1(cfg.d, cfg.bN, cfg.m, 60000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(closed-mc) > 0.01 {
			t.Errorf("bN=%d m=%d: closed %f vs MC %f", cfg.bN, cfg.m, closed, mc)
		}
	}
}

func TestTheorem1MoreZerosLowerPf(t *testing.T) {
	d := UniformDist(30)
	prev := 1.1
	for m := 0; m <= 20; m += 4 {
		pf, err := Theorem1(d, 20, m)
		if err != nil {
			t.Fatal(err)
		}
		if pf > prev {
			t.Fatalf("p_f not decreasing in m: %f > %f at m=%d", pf, prev, m)
		}
		prev = pf
	}
}

func TestTheorem1Validation(t *testing.T) {
	d := UniformDist(10)
	if _, err := Theorem1(d, 0, 1); err == nil {
		t.Error("bN=0 accepted")
	}
	if _, err := Theorem1(d, 11, 1); err == nil {
		t.Error("bN>bmax accepted")
	}
	if _, err := Theorem1(d, 5, -1); err == nil {
		t.Error("negative m accepted")
	}
	if _, err := MonteCarloTheorem1(d, 5, 1, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("trials=0 accepted")
	}
}

func TestTheorem2CloseToMonteCarlo(t *testing.T) {
	// The closed form approximates the tie handling; accept a small gap.
	rng := rand.New(rand.NewSource(2))
	for _, cfg := range []struct {
		d         Dist
		bN, m, t_ int
	}{
		{UniformDist(40), 30, 12, 2},
		{UniformDist(40), 35, 20, 3},
		{GeometricDist(40, 0.3, 0.9), 20, 15, 2},
	} {
		closed, err := Theorem2(cfg.d, cfg.bN, cfg.m, cfg.t_)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarloTheorem2(cfg.d, cfg.bN, cfg.m, cfg.t_, 60000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if closed < 0 || closed > 1 {
			t.Errorf("closed form out of [0,1]: %f", closed)
		}
		if math.Abs(closed-mc) > 0.05 {
			t.Errorf("bN=%d m=%d t=%d: closed %f vs MC %f", cfg.bN, cfg.m, cfg.t_, closed, mc)
		}
	}
}

func TestTheorem2Validation(t *testing.T) {
	d := UniformDist(10)
	if _, err := Theorem2(d, 5, 2, 2); err == nil {
		t.Error("m ≤ t accepted")
	}
	if _, err := Theorem2(d, 0, 5, 2); err == nil {
		t.Error("bN=0 accepted")
	}
	if _, err := MonteCarloTheorem2(d, 5, 5, 2, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("trials=0 accepted")
	}
}

func TestTheorem3Bounds(t *testing.T) {
	// E[μ] must lie in [0, t] whatever the formula's approximations.
	bids := []int{5, 12, 30, 44}
	for _, tt := range []int{1, 2, 3} {
		e, err := Theorem3(100, bids, 10, tt)
		if err != nil {
			t.Fatal(err)
		}
		if e < 0 || e > float64(tt) {
			t.Errorf("t=%d: E[mu] = %f out of [0,%d]", tt, e, tt)
		}
	}
}

func TestTheorem3MonteCarloBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bids := []int{5, 12, 30, 44}
	mc, err := MonteCarloTheorem3(100, bids, 10, 2, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if mc < 0 || mc > 4 {
		t.Errorf("MC E[mu] = %f implausible", mc)
	}
	// With few zeros and small bmax... more zeros above should reduce μ:
	// compare m=2 vs m=40 (more disguises crowd out true bids).
	few, err := MonteCarloTheorem3(100, bids, 2, 2, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	many, err := MonteCarloTheorem3(100, bids, 40, 2, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if many > few {
		t.Errorf("E[mu] should fall as zeros grow: m=2 → %f, m=40 → %f", few, many)
	}
}

func TestTheorem3Validation(t *testing.T) {
	if _, err := Theorem3(10, nil, 5, 2); err == nil {
		t.Error("empty bids accepted")
	}
	if _, err := Theorem3(10, []int{3, 1}, 5, 2); err == nil {
		t.Error("unsorted bids accepted")
	}
	if _, err := MonteCarloTheorem3(10, []int{1}, 0, 1, 100, rand.New(rand.NewSource(1))); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestTheorem4Formula(t *testing.T) {
	// 128-bit digests, w=10, k=2, N=3:
	// h = 128/11; total = (128/11)·2·3·29·11 = 128·2·3·29 = 22272 bits.
	bits, err := Theorem4Bits(128, 10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bits-22272) > 1e-9 {
		t.Errorf("bits = %f, want 22272", bits)
	}
	if got := Theorem4DigestCount(10, 2, 3); got != 174 {
		t.Errorf("digest count = %d, want 174", got)
	}
	// Consistency: digests × digest bits = formula.
	if math.Abs(float64(174*128)-bits) > 1e-9 {
		t.Error("digest count inconsistent with bit formula")
	}
	if _, err := Theorem4Bits(0, 1, 1, 1); err == nil {
		t.Error("bad hmac bits accepted")
	}
}

func TestTheorem4LinearInN(t *testing.T) {
	a, _ := Theorem4Bits(128, 12, 5, 100)
	b, _ := Theorem4Bits(128, 12, 5, 200)
	if math.Abs(b/a-2) > 1e-9 {
		t.Errorf("cost not linear in N: %f vs %f", a, b)
	}
}
