// Package theory implements the paper's analytical results (Theorems 1–4)
// and Monte-Carlo validators for each. The closed forms are transcribed
// verbatim from the paper; the validators simulate the underlying
// probabilistic model directly, so the experiment harness can report
// formula-vs-simulation agreement (and flag the places where the paper's
// combinatorics are approximations).
//
// Model (section IV.C.3, as simplified in the paper's theorem setup): on
// one channel there are N bids b_1 ≤ … ≤ b_N of which m are zeros; each
// zero is independently replaced by value r ∈ [0, bmax] with probability
// p_r (Σ p_r = 1, replacement by 0 meaning "stays zero").
package theory

import (
	"fmt"
	"math/rand"
)

// Dist is a replacement distribution p_0..p_bmax over zero-disguise values.
type Dist []float64

// UniformDist returns the best-protection distribution of Theorem 3:
// p_r = 1/(1+bmax) for every r.
func UniformDist(bmax int) Dist {
	d := make(Dist, bmax+1)
	for i := range d {
		d[i] = 1 / float64(bmax+1)
	}
	return d
}

// GeometricDist returns p_0 mass at zero and geometrically decaying mass
// over [1, bmax] (the production disguise policy of package core).
func GeometricDist(bmax int, p0, decay float64) Dist {
	d := make(Dist, bmax+1)
	d[0] = p0
	w := 1.0
	total := 0.0
	for r := 1; r <= bmax; r++ {
		d[r] = w
		total += w
		w *= decay
	}
	for r := 1; r <= bmax; r++ {
		d[r] *= (1 - p0) / total
	}
	return d
}

// Validate checks that d is a probability distribution.
func (d Dist) Validate() error {
	if len(d) < 2 {
		return fmt.Errorf("theory: distribution needs at least p_0 and p_1")
	}
	sum := 0.0
	for r, p := range d {
		if p < 0 {
			return fmt.Errorf("theory: p_%d = %f negative", r, p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("theory: distribution sums to %f", sum)
	}
	return nil
}

// tailSum returns Σ_{r=lo}^{bmax} p_r (0 when lo exceeds bmax).
func (d Dist) tailSum(lo int) float64 {
	if lo < 0 {
		lo = 0
	}
	s := 0.0
	for r := lo; r < len(d); r++ {
		s += d[r]
	}
	return s
}

// headSum returns Σ_{r=0}^{hi} p_r (0 when hi is negative).
func (d Dist) headSum(hi int) float64 {
	if hi >= len(d) {
		hi = len(d) - 1
	}
	s := 0.0
	for r := 0; r <= hi; r++ {
		s += d[r]
	}
	return s
}

// sample draws one replacement value.
func (d Dist) sample(rng *rand.Rand) int {
	u := rng.Float64()
	cum := 0.0
	for r, p := range d {
		cum += p
		if u < cum {
			return r
		}
	}
	return len(d) - 1
}

// pow is a small helper for x^n with integer n ≥ 0.
func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

// binom returns C(n, k) as float64 (n up to a few hundred in our
// experiments; well within float64 range).
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 1; i <= k; i++ {
		out *= float64(n - k + i)
		out /= float64(i)
	}
	return out
}

// Theorem1 returns the closed-form probability that no zero bid wins the
// channel, for highest true bid bN and m zero bids (equation 4):
//
//	p_f = [(1 − Σ_{r>bN} p_r)^{m+1} − (1 − Σ_{r≥bN} p_r)^{m+1}] / ((m+1)·p_bN)
//
// When p_bN = 0 the tie term vanishes and p_f = (1 − Σ_{r>bN} p_r)^m.
func Theorem1(d Dist, bN, m int) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if bN < 1 || bN >= len(d) {
		return 0, fmt.Errorf("theory: bN %d out of [1,%d]", bN, len(d)-1)
	}
	if m < 0 {
		return 0, fmt.Errorf("theory: negative zero count %d", m)
	}
	above := d.tailSum(bN + 1)
	atOrAbove := d.tailSum(bN)
	pBN := d[bN]
	if pBN == 0 {
		return pow(1-above, m), nil
	}
	num := pow(1-above, m+1) - pow(1-atOrAbove, m+1)
	return num / (float64(m+1) * pBN), nil
}

// MonteCarloTheorem1 estimates the same probability by simulation: draw m
// replacements; a zero wins when some replacement exceeds bN, or ties bN
// and the uniform tie-break picks a zero.
func MonteCarloTheorem1(d Dist, bN, m, trials int, rng *rand.Rand) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if bN < 1 || bN >= len(d) || m < 0 || trials < 1 {
		return 0, fmt.Errorf("theory: bad arguments bN=%d m=%d trials=%d", bN, m, trials)
	}
	noWin := 0
	for trial := 0; trial < trials; trial++ {
		aboveCnt, tieCnt := 0, 0
		for z := 0; z < m; z++ {
			v := d.sample(rng)
			switch {
			case v > bN:
				aboveCnt++
			case v == bN:
				tieCnt++
			}
		}
		switch {
		case aboveCnt > 0:
			// a disguised zero strictly outbids bN: zero wins
		case tieCnt == 0:
			noWin++
		default:
			// Uniform among tieCnt zeros + 1 original.
			if rng.Intn(tieCnt+1) == tieCnt {
				noWin++
			}
		}
	}
	return float64(noWin) / float64(trials), nil
}
