// Package lppa is a Go implementation of LPPA — the Location Privacy
// Preserving Dynamic Spectrum Auction of Liu et al. (ICDCS 2013) — together
// with the substrate it is evaluated on: an FCC-style TV-band coverage
// simulator, truthful secondary-user bid models, the BCM and BPM
// location-inference attacks, and a networked deployment of the three
// protocol parties (bidders, auctioneer, TTP).
//
// # Quick start
//
// Generate a dataset, place bidders, and run one private auction round:
//
//	ds, _ := lppa.GenerateLA(42)
//	area := ds.Areas[2]
//	sc, _ := lppa.NewScenario(area, 32, 2)
//	pop, _ := lppa.NewPopulation(area, 50, lppa.DefaultBidConfig(), rng)
//	ring, _ := lppa.DeriveKeyRing([]byte("round-1"), sc.Params.Channels, 5, 8)
//	res, _ := lppa.Run(sc.Params, ring, lppa.RoundInput{
//	    Points: lppa.Points(pop),
//	    Bids:   sc.TruncatedBids(pop),
//	    Policy: lppa.DisguisePolicy{P0: 0.7, Decay: 0.95},
//	    Rng:    rng,
//	})
//
// Run accepts functional options: WithWorkers for the deterministic
// parallel pipeline, WithSecondPrice / WithInteractiveCharging for the
// alternative charging rules, and WithObserver to record phase timings and
// protocol counters into a metrics Registry (see DESIGN.md §5c).
//
// See examples/ for complete programs and cmd/lppa-sim for the paper's
// full evaluation suite.
//
// # Architecture
//
// The package is a facade over focused internal packages:
//
//   - internal/prefix, internal/mask — prefix membership verification and
//     its keyed masking (the cryptographic heart of PPBS);
//   - internal/geo, internal/radio, internal/dataset — grid geometry, RF
//     propagation, and the synthetic Los Angeles coverage maps;
//   - internal/bidder — secondary users and truthful bid vectors;
//   - internal/core — the LPPA protocol proper (submissions, auctioneer,
//     order-preserving comparisons);
//   - internal/ttp — the trusted third party;
//   - internal/auction, internal/conflict — Algorithm 3 and the
//     interference graph;
//   - internal/attack, internal/privacy — BCM/BPM and privacy metrics;
//   - internal/round, internal/transport — in-process and TCP round
//     orchestration;
//   - internal/theory, internal/sim — the paper's theorems and the
//     experiment harness.
package lppa

import (
	"io"
	"math/rand"
	"time"

	"lppa/internal/attack"
	"lppa/internal/auction"
	"lppa/internal/bidder"
	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/faults"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
	"lppa/internal/obs/audit"
	"lppa/internal/privacy"
	"lppa/internal/round"
	"lppa/internal/sim"
	"lppa/internal/theory"
	"lppa/internal/transport"
	"lppa/internal/ttp"
)

// Geometry and dataset types.
type (
	// Grid is the cell partition of an evaluation region.
	Grid = geo.Grid
	// Cell addresses one grid cell (row, column).
	Cell = geo.Cell
	// Point is a protocol coordinate pair.
	Point = geo.Point
	// CellSet is a set of grid cells (coverage maps, attack outputs).
	CellSet = geo.CellSet
	// Dataset is the four-area evaluation dataset.
	Dataset = dataset.Dataset
	// Area is one 75 km × 75 km evaluation region.
	Area = dataset.Area
	// DatasetConfig controls dataset generation.
	DatasetConfig = dataset.Config
	// AreaProfile parameterizes one area's RF character.
	AreaProfile = dataset.AreaProfile
)

// Bidder-side types.
type (
	// SU is a secondary user.
	SU = bidder.SU
	// BidConfig controls valuation and bid quantization.
	BidConfig = bidder.Config
	// Population couples SUs with their bid vectors.
	Population = bidder.Population
)

// Protocol types.
type (
	// Params are the public protocol parameters of one auction round.
	Params = core.Params
	// DisguisePolicy is a bidder's zero-disguise distribution.
	DisguisePolicy = core.DisguisePolicy
	// KeyRing is the TTP-escrowed secret material.
	KeyRing = mask.KeyRing
	// LocationSubmission is a masked location.
	LocationSubmission = core.LocationSubmission
	// BidSubmission is a masked bid vector.
	BidSubmission = core.BidSubmission
	// Auctioneer is the untrusted auction runner.
	Auctioneer = core.Auctioneer
	// TTP is the trusted third party.
	TTP = ttp.TTP
	// Assignment is one awarded (bidder, channel) pair.
	Assignment = auction.Assignment
	// Outcome summarizes an auction round.
	Outcome = auction.Outcome
	// RoundResult is the outcome of an in-process private round.
	RoundResult = round.Result
	// RoundInput bundles one round's bidders for Run.
	RoundInput = round.Input
	// RunOption configures Run (WithWorkers, WithSecondPrice, ...).
	RunOption = round.Option
	// Series runs consecutive auctions with batched TTP charging.
	Series = round.Series
	// Batcher schedules multi-auction TTP settlement windows.
	Batcher = round.Batcher
)

// Observability types.
type (
	// Registry collects the counters, gauges, and phase-timing histograms
	// every instrumented layer records into; export with its WriteJSON /
	// WritePrometheus methods or serve its Handler over HTTP. See
	// DESIGN.md §5c.
	Registry = obs.Registry
	// Tracer buffers distributed round spans; hand one to WithTrace, a
	// TransportConfig, or a BidderClient and export with WriteChromeTrace.
	// See DESIGN.md §5e.
	Tracer = obs.Tracer
	// Span is one timed operation in a round trace.
	Span = obs.Span
	// FlightRecorder ring-buffers round traces and auto-dumps them on
	// failure, quorum degradation, or an SLO breach.
	FlightRecorder = obs.FlightRecorder
	// AuditReport is the per-round privacy-leakage audit (AUDIT_ROUND.json).
	AuditReport = audit.Report
	// AuditOptions configures AuditRound (attacker model, coverage area,
	// metrics fold-in).
	AuditOptions = audit.Options
	// BidderAudit is one bidder's leakage tally inside an AuditReport.
	BidderAudit = audit.BidderAudit
)

// Attack and metric types.
type (
	// BPMConfig tunes the Bid-Price Mining attack.
	BPMConfig = attack.BPMConfig
	// BPMResult is a BPM attack outcome.
	BPMResult = attack.BPMResult
	// CardinalityTable inverts basic-scheme range-set sizes to bids.
	CardinalityTable = attack.CardinalityTable
	// PrivacyReport holds per-victim privacy metrics.
	PrivacyReport = privacy.Report
	// PrivacyAggregate averages reports across victims.
	PrivacyAggregate = privacy.Aggregate
)

// Networked deployment types.
type (
	// TTPServer serves the TTP over a listener.
	TTPServer = transport.TTPServer
	// AuctioneerServer runs one networked auction round.
	AuctioneerServer = transport.AuctioneerServer
	// BidderClient participates in a networked round.
	BidderClient = transport.BidderClient
	// Result is a bidder's networked round result.
	Result = transport.Result
	// RetryPolicy shapes the bidder client's backoff (DESIGN.md §5d).
	RetryPolicy = transport.RetryPolicy
	// RoundOutcome summarizes a networked round on the auctioneer side,
	// including bidders excluded from a degraded quorum round.
	RoundOutcome = transport.RoundOutcome
	// TransportConfig carries the servers' operational knobs (timeouts,
	// quorum, metrics, charging rule).
	TransportConfig = transport.Config
	// FaultConfig selects the deterministic fault classes a chaos-injected
	// connection exhibits (internal/faults; DESIGN.md §5d).
	FaultConfig = faults.Config
	// FaultInjector hands out seeded fault-injected connections.
	FaultInjector = faults.Injector
)

// NewFaultInjector creates a fault injector whose connection schedules all
// derive from seed, so any chaos failure replays exactly.
func NewFaultInjector(seed int64, cfg FaultConfig) *FaultInjector {
	return faults.NewInjector(seed, cfg)
}

// Experiment harness types.
type (
	// Scenario bundles an area with derived protocol parameters.
	Scenario = sim.Scenario
	// Table is a rendered experiment result.
	Table = sim.Table
	// MultiRoundConfig drives the repeated-participation experiment.
	MultiRoundConfig = sim.MultiRoundConfig
	// MultiRoundPoint is the attack state after a number of rounds.
	MultiRoundPoint = sim.MultiRoundPoint
)

// DefaultGrid returns the paper's geometry: 100×100 cells over 75 km.
func DefaultGrid() Grid { return geo.DefaultGrid() }

// GenerateLA synthesizes the four-area, 129-channel evaluation dataset.
func GenerateLA(seed int64) (*Dataset, error) { return dataset.GenerateLA(seed) }

// GenerateDataset synthesizes a dataset with custom geometry/profiles.
func GenerateDataset(cfg DatasetConfig, seed int64) (*Dataset, error) {
	return dataset.Generate(cfg, seed)
}

// DefaultDatasetConfig is the paper's dataset configuration.
func DefaultDatasetConfig() DatasetConfig { return dataset.DefaultConfig() }

// LoadOrGenerateDataset returns the dataset cached at path, generating and
// caching it when absent or stale.
func LoadOrGenerateDataset(path string, cfg DatasetConfig, seed int64) (*Dataset, error) {
	return dataset.LoadOrGenerate(path, cfg, seed)
}

// DefaultBidConfig mirrors the paper's bid model (bmax 100, 20 % valuation
// noise, 25 % sensing discrepancy).
func DefaultBidConfig() BidConfig { return bidder.DefaultConfig() }

// NewPopulation places n secondary users in area and computes their
// truthful bids.
func NewPopulation(area *Area, n int, cfg BidConfig, rng *rand.Rand) (*Population, error) {
	return bidder.NewPopulation(area, n, cfg, rng)
}

// Points extracts protocol coordinates from a population.
func Points(pop *Population) []Point { return sim.Points(pop) }

// NewScenario derives protocol parameters for an auction over the first
// channels channels of area, with interference half-range lambda cells.
func NewScenario(area *Area, channels int, lambda uint64) (*Scenario, error) {
	return sim.NewScenario(area, channels, lambda)
}

// DeriveKeyRing deterministically expands a seed into the round's secret
// material (the TTP's role); use NewKeyRing for crypto/rand keys.
func DeriveKeyRing(seed []byte, channels int, rd, cr uint64) (*KeyRing, error) {
	return mask.DeriveKeyRing(seed, channels, rd, cr)
}

// NewKeyRing draws a fresh key ring from crypto/rand.
func NewKeyRing(channels int, rd, cr uint64) (*KeyRing, error) {
	return mask.NewKeyRing(channels, rd, cr)
}

// DefaultDisguise is a moderate zero-disguise policy.
func DefaultDisguise() DisguisePolicy { return core.DefaultDisguise() }

// NewLocationSubmission builds a bidder's masked location submission.
func NewLocationSubmission(params Params, ring *KeyRing, pt Point) (*LocationSubmission, error) {
	return core.NewLocationSubmission(params, ring, pt)
}

// Conflicts evaluates the masked conflict predicate between two location
// submissions — the only location operation the auctioneer can perform.
func Conflicts(a, b *LocationSubmission) bool { return core.Conflicts(a, b) }

// Run executes a full LPPA round in-process. The default is the paper's
// design — one disguise policy for all bidders, batch TTP charging, the
// serial pipeline — and functional options select every variant: worker
// count, per-bidder policies, charging rule, and metrics.
func Run(params Params, ring *KeyRing, in RoundInput, opts ...RunOption) (*RoundResult, error) {
	return round.Run(params, ring, in, opts...)
}

// WithWorkers runs the round through the deterministic parallel pipeline
// with n goroutines (0 = GOMAXPROCS). Results are identical for any worker
// count.
func WithWorkers(n int) RunOption { return round.WithWorkers(n) }

// WithPolicies gives each bidder its own disguise policy (len must equal
// the population size); overrides RoundInput.Policy.
func WithPolicies(policies []DisguisePolicy) RunOption { return round.WithPolicies(policies) }

// WithInteractiveCharging switches to per-award TTP validity checks (the
// ablation design; see DESIGN.md §5).
func WithInteractiveCharging() RunOption { return round.WithInteractiveCharging() }

// WithSecondPrice switches to clearing-price charging: winners pay the
// award-time runner-up's bid, unblinded by the TTP.
func WithSecondPrice() RunOption { return round.WithSecondPrice() }

// WithObserver records the round into reg: per-phase wall time, winners,
// revenue, comparison and interning counters. A nil registry disables
// observation at zero cost, and results are bit-identical either way.
func WithObserver(reg *Registry) RunOption { return round.WithObserver(reg) }

// WithQuorum lets Run degrade gracefully: bidders whose submissions cannot
// be produced are excluded (reported in RoundResult.Excluded) as long as at
// least q usable submissions remain; fewer fail the round with
// ErrQuorumNotReached. A fault-free round is bit-identical with or without
// the option.
func WithQuorum(q int) RunOption { return round.WithQuorum(q) }

// WithStragglerTimeout bounds how long Run waits for any bidder's
// submission; stragglers are excluded under the WithQuorum rules. Requires
// WithWorkers.
func WithStragglerTimeout(d time.Duration) RunOption { return round.WithStragglerTimeout(d) }

// WithShards partitions the round into k coarse tiles routed by masked
// digests: per-tile conflict graphs and rank memos are built independently
// and reconciled across border bands. Results are bit-identical to the
// unsharded round for any k; only the cost profile changes. See DESIGN.md
// §5g.
func WithShards(k int) RunOption { return round.WithShards(k) }

// WithIndexedCandidates switches conflict-candidate generation onto the
// inverted row index (DESIGN.md §5f). Results are bit-identical to the
// default scan; only the cost profile changes with placement density.
func WithIndexedCandidates() RunOption { return round.WithIndexedCandidates() }

// EpochState carries the population-independent pieces of a round —
// the auctioneer and the shard planner's tile grid — across back-to-back
// epochs of the same auction, so a long-lived service does not rebuild
// them per round. One EpochState serves one sequence of Runs on one
// goroutine. See DESIGN.md §5h.
type EpochState = round.EpochState

// NewEpochState returns an empty reuse state; the first Run carrying it
// populates the reusable pieces.
func NewEpochState() *EpochState { return round.NewEpochState() }

// WithEpochState makes Run reuse st's auctioneer and shard planner
// instead of rebuilding them. Results are bit-identical to the same call
// without the option; composes with every other option.
func WithEpochState(st *EpochState) RunOption { return round.WithEpochState(st) }

// ErrQuorumNotReached reports a round (in-process or networked) that ended
// with fewer usable submissions than its quorum; test with errors.Is.
var ErrQuorumNotReached = round.ErrQuorumNotReached

// NewRegistry creates an empty metrics registry for WithObserver or the
// transport servers.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTracer creates a tracer whose spans report proc as their process
// name; its Named method derives same-buffer views for co-located parties.
func NewTracer(proc string) *Tracer { return obs.NewTracer(proc) }

// NewFlightRecorder creates a flight recorder that keeps the last keep
// round traces in memory and dumps the ring into dir when a round fails,
// degrades to quorum, or (slo > 0) overruns slo.
func NewFlightRecorder(dir string, keep int, slo time.Duration) *FlightRecorder {
	return obs.NewFlightRecorder(dir, keep, slo)
}

// WriteChromeTrace exports spans in Chrome trace_event format — load the
// file in ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []*Span) error { return obs.WriteChromeTrace(w, spans) }

// WriteTraceSummary renders a human-readable per-trace span tree.
func WriteTraceSummary(w io.Writer, spans []*Span) error { return obs.WriteTraceSummary(w, spans) }

// WithTrace records the round as a span tree in tracer: a round root with
// encode/conflict_graph/allocate/charge phase children. A nil tracer is a
// no-op; results are bit-identical either way. See DESIGN.md §5e.
func WithTrace(tracer *Tracer) RunOption { return round.WithTrace(tracer) }

// WithFlightRecorder ring-buffers each traced round and auto-dumps the
// ring on failure or quorum degradation. Requires WithTrace.
func WithFlightRecorder(fr *FlightRecorder) RunOption { return round.WithFlightRecorder(fr) }

// TraceSampler deterministically traces one round in every K (see
// NewTraceSampler); hand one to WithTraceSampler for long-lived services
// where tracing every epoch is unaffordable.
type TraceSampler = obs.TraceSampler

// NewTraceSampler creates a sampler tracing one round in every k into a
// tracer named proc. The schedule is a pure function of (seed, k), so the
// sampled trace set replays bit for bit.
func NewTraceSampler(proc string, seed int64, k int) *TraceSampler {
	return obs.NewTraceSampler(proc, seed, k)
}

// WithTraceSampler traces the round only when the sampler's deterministic
// 1-in-K schedule picks it; unsampled rounds stay on the allocation-free
// untraced path. Mutually exclusive with WithTrace; a nil sampler is a
// no-op. See DESIGN.md §5i.
func WithTraceSampler(s *TraceSampler) RunOption { return round.WithTraceSampler(s) }

// AuditRound tallies what one round's transcript exposed to the
// auctioneer — masked digest counts, conflict degrees, per-channel
// comparison work — and, given a coverage area, the anonymity-set size
// the paper's transcript attacker achieves against each bidder.
func AuditRound(res *RoundResult, opts AuditOptions) (*AuditReport, error) {
	return audit.Round(res, opts)
}

// RunPrivate executes a full LPPA round in-process (batch TTP charging,
// the paper's design).
//
// Deprecated: use Run.
func RunPrivate(params Params, ring *KeyRing, points []Point, bids [][]uint64,
	policy DisguisePolicy, rng *rand.Rand) (*RoundResult, error) {
	return round.RunPrivate(params, ring, points, bids, policy, rng)
}

// RunPrivateInteractive executes a round with per-award TTP validity
// checks (the ablation design; see DESIGN.md §5).
//
// Deprecated: use Run with WithInteractiveCharging.
func RunPrivateInteractive(params Params, ring *KeyRing, points []Point, bids [][]uint64,
	policy DisguisePolicy, rng *rand.Rand) (*RoundResult, error) {
	return round.RunPrivateInteractive(params, ring, points, bids, policy, rng)
}

// NewSeries builds a multi-auction runner with batched TTP charging
// (section V.C.2).
func NewSeries(params Params, ring *KeyRing, maxRequests, maxRounds int, rng *rand.Rand) (*Series, error) {
	return round.NewSeries(params, ring, maxRequests, maxRounds, rng)
}

// RunPlainBaseline runs the non-private reference auction.
func RunPlainBaseline(points []Point, bids [][]uint64, lambda uint64, rng *rand.Rand) (*Outcome, error) {
	return round.RunPlainBaseline(points, bids, lambda, rng)
}

// RunPrivateSecondPrice executes a private round with second-price
// (clearing-price) charging — the paper's future-work direction
// implemented end to end (winners pay the award-time runner-up's bid,
// unblinded by the TTP).
//
// Deprecated: use Run with WithSecondPrice.
func RunPrivateSecondPrice(params Params, ring *KeyRing, points []Point, bids [][]uint64,
	policy DisguisePolicy, rng *rand.Rand) (*RoundResult, error) {
	return round.RunPrivateSecondPrice(params, ring, points, bids, policy, rng)
}

// BCM runs the Bid-Channels Mining attack for an observed channel set.
func BCM(area *Area, channels []int) (*CellSet, error) { return attack.BCM(area, channels) }

// BCMFromBids runs BCM on a plaintext bid vector (Algorithm 1).
func BCMFromBids(area *Area, bids []uint64) (*CellSet, error) {
	return attack.BCMFromBids(area, bids)
}

// BCMRobust runs the noise-tolerant BCM variant used against LPPA
// transcripts: it keeps the cells consistent with the most observations.
func BCMRobust(area *Area, channels []int) (*CellSet, int, error) {
	return attack.BCMRobust(area, channels)
}

// BPM runs the Bid-Price Mining attack (Algorithm 2).
func BPM(area *Area, p *CellSet, bids []uint64, cfg BPMConfig) (*BPMResult, error) {
	return attack.BPM(area, p, bids, cfg)
}

// TopFractionChannels extracts per-user observed channels from per-channel
// bid rankings (the attacker's move against LPPA transcripts).
func TopFractionChannels(rankings [][]int, n int, frac float64) ([][]int, error) {
	return attack.TopFractionChannels(rankings, n, frac)
}

// NewCardinalityTable precomputes the section IV.C.1 cardinality-leak
// inversion against the basic bid scheme.
func NewCardinalityTable(bmax uint64) (*CardinalityTable, error) {
	return attack.NewCardinalityTable(bmax)
}

// EvaluatePrivacy computes the four privacy metrics for one attack output.
func EvaluatePrivacy(p *CellSet, truth Cell) PrivacyReport { return privacy.Evaluate(p, truth) }

// SummarizePrivacy aggregates per-victim reports.
func SummarizePrivacy(reports []PrivacyReport) PrivacyAggregate { return privacy.Summarize(reports) }

// Theorem1 returns the closed-form probability that no zero bid wins
// (paper equation 4), under replacement distribution d (index r = value,
// d[r] = p_r).
func Theorem1(d []float64, bN, m int) (float64, error) { return theory.Theorem1(theory.Dist(d), bN, m) }

// UniformDisguiseDist is Theorem 3's best-protection distribution.
func UniformDisguiseDist(bmax int) []float64 { return theory.UniformDist(bmax) }

// DefaultMultiRoundConfig is a moderate repeated-participation setting.
func DefaultMultiRoundConfig() MultiRoundConfig { return sim.DefaultMultiRoundConfig() }

// MultiRound runs the repeated-participation experiment of section V.C.3:
// the linked attacker accumulates observations across rounds; the ID-mixing
// defence confines it to single rounds.
func MultiRound(area *Area, cfg MultiRoundConfig, seed int64) ([]MultiRoundPoint, error) {
	return sim.MultiRound(area, cfg, seed)
}
