package lppa_test

import (
	"fmt"
	"math/rand"

	"lppa"
)

// Example_prefixMembership shows the primitive everything builds on: the
// masked conflict predicate derived from prefix membership verification.
// Two bidders 3 cells apart conflict at λ = 2 (threshold 2λ = 4); two
// bidders 5 cells apart do not — and the auctioneer decides this from
// HMAC digests alone.
func Example_prefixMembership() {
	params := lppa.Params{Channels: 1, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 10}
	ring, err := lppa.DeriveKeyRing([]byte("example"), params.Channels, 2, 4)
	if err != nil {
		panic(err)
	}
	submit := func(x, y uint64) *lppa.LocationSubmission {
		sub, err := lppa.NewLocationSubmission(params, ring, lppa.Point{X: x, Y: y})
		if err != nil {
			panic(err)
		}
		return sub
	}
	a, b, c := submit(10, 10), submit(13, 10), submit(15, 10)
	fmt.Println("a-b conflict:", lppa.Conflicts(a, b))
	fmt.Println("a-c conflict:", lppa.Conflicts(a, c))
	// Output:
	// a-b conflict: true
	// a-c conflict: false
}

// Example_privateRound runs a complete three-party auction round on fixed
// inputs: the auctioneer allocates over masked bids and the TTP settles
// first-price charges.
func Example_privateRound() {
	params := lppa.Params{Channels: 2, Lambda: 3, MaxX: 49, MaxY: 49, BMax: 100}
	ring, err := lppa.DeriveKeyRing([]byte("example-round"), params.Channels, 5, 8)
	if err != nil {
		panic(err)
	}
	// Three bidders: two clustered (conflicting), one far away.
	points := []lppa.Point{{X: 10, Y: 10}, {X: 11, Y: 10}, {X: 40, Y: 40}}
	bids := [][]uint64{{80, 10}, {60, 70}, {50, 90}}
	res, err := lppa.Run(params, ring, lppa.RoundInput{Points: points, Bids: bids,
		Policy: lppa.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(7))})
	if err != nil {
		panic(err)
	}
	fmt.Println("winners:", len(res.Outcome.Assignments))
	fmt.Println("revenue:", res.Outcome.Revenue)
	fmt.Println("violations:", res.Violations)
	// Output:
	// winners: 3
	// revenue: 240
	// violations: 0
}

// ExampleTheorem1 evaluates the paper's closed form for the probability
// that no disguised zero wins a channel.
func ExampleTheorem1() {
	d := lppa.UniformDisguiseDist(100) // best-protection distribution
	pf, err := lppa.Theorem1(d, 80, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(zero does not win) = %.4f\n", pf)
	// Output:
	// P(zero does not win) = 0.1035
}
