#!/usr/bin/env sh
# ops_smoke.sh — end-to-end smoke of the live ops plane (make ops-smoke).
#
# Boots lppa-net's epochal demo with the full ops plane enabled and an
# impossibly tight SLO (allocate=1ns), so the burn-rate monitor breaches
# deterministically on real traffic. Then asserts, over HTTP and the
# artifacts on disk:
#   /readyz   -> 503 "closed" once the demo's service has drained
#   /healthz  -> 503 carrying slo_breach:allocate
#   /statusz  -> JSON with the breach latched and epochs observed
#   /metrics  -> lppa_ops_* series present, with # HELP text
#   events.jsonl -> slo_breach and epoch_closed lines, trace-correlated
#   flight dir   -> an epoch-tagged forced dump (flight-e*-*.trace.json)
set -eu

WORK="$(mktemp -d)"
OUT="$WORK/net.out"
EVENTS="$WORK/events.jsonl"
FLIGHT="$WORK/flight"
PID=""

cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "ops-smoke: FAIL: $*" >&2
    echo "--- lppa-net output ---" >&2
    cat "$OUT" >&2 || true
    exit 1
}

echo "ops-smoke: building lppa-net"
go build -o "$WORK/lppa-net" ./cmd/lppa-net

"$WORK/lppa-net" -epochs 6 -bidders 16 -seed 7 \
    -metrics-addr 127.0.0.1:0 \
    -ops-events "$EVENTS" \
    -flight-dir "$FLIGHT" \
    -trace-sample 2 \
    -slo allocate=1ns -slo-fast-window 4 -slo-slow-window 8 \
    -anon-floor 1 \
    >"$OUT" 2>&1 &
PID=$!

# The demo prints the bound metrics address first, runs its epochs, then
# lingers for scrape. Wait for both the banner and epoch completion.
BASE=""
for _ in $(seq 1 100); do
    BASE="$(sed -n 's|^metrics on http://\([^/]*\)/metrics$|\1|p' "$OUT" 2>/dev/null | head -1)"
    if [ -n "$BASE" ] && grep -q "epochs in" "$OUT"; then
        break
    fi
    kill -0 "$PID" 2>/dev/null || fail "lppa-net exited early"
    sleep 0.2
done
[ -n "$BASE" ] || fail "no metrics banner in output"
grep -q "epochs in" "$OUT" || fail "epochs did not complete"
echo "ops-smoke: service up at $BASE"

http() { # http <path>: body in $WORK/body, status code in $CODE
    CODE="$(curl -s -o "$WORK/body" -w '%{http_code}' "http://$BASE$1")"
}

# 1. Readiness: the demo's service has drained and closed by the time it
# lingers for scrape, so probes must see NOT-ready with the closed state —
# readiness flipping at drain is exactly the contract under test.
http /readyz
[ "$CODE" = "503" ] || fail "/readyz returned $CODE, want 503 after drain"
grep -q "closed" "$WORK/body" || fail "/readyz body lacks closed state: $(cat "$WORK/body")"

# 2. Health: the 1ns allocate SLO must have breached.
http /healthz
[ "$CODE" = "503" ] || fail "/healthz returned $CODE, want 503 (breached)"
grep -q "slo_breach:allocate" "$WORK/body" || fail "/healthz body lacks slo_breach:allocate: $(cat "$WORK/body")"

# 3. Status document: valid JSON, breach latched, all epochs observed.
http /statusz
[ "$CODE" = "200" ] || fail "/statusz returned $CODE"
grep -q '"epochs_observed": *6' "$WORK/body" || fail "/statusz epochs_observed != 6: $(cat "$WORK/body")"
grep -q '"breached": *true' "$WORK/body" || fail "/statusz carries no latched SLO breach: $(cat "$WORK/body")"
grep -q '"anonymity"' "$WORK/body" || fail "/statusz carries no anonymity series: $(cat "$WORK/body")"

# 4. Metrics: ops series exported with help text.
http /metrics
[ "$CODE" = "200" ] || fail "/metrics returned $CODE"
grep -q '^lppa_ops_slo_breaches_total [1-9]' "$WORK/body" || fail "no breach count in /metrics"
grep -q '^# HELP lppa_ops_slo_breaches_total ' "$WORK/body" || fail "no # HELP for breach counter"
grep -q '^lppa_ops_sampled_traces_total 3$' "$WORK/body" || fail "1-in-2 sampler did not trace 3 of 6 epochs"

# 5. Event log: breach and epoch-close events, epoch-correlated.
[ -s "$EVENTS" ] || fail "event log $EVENTS is empty"
grep -q '"type":"slo_breach"' "$EVENTS" || fail "no slo_breach event in $EVENTS"
grep -q '"type":"epoch_closed"' "$EVENTS" || fail "no epoch_closed event in $EVENTS"
grep -q '"type":"epoch_sealed"' "$EVENTS" || fail "no epoch_sealed event in $EVENTS"
grep '"type":"epoch_closed"' "$EVENTS" | grep -q '"trace":"[0-9a-f]' \
    || fail "no trace-correlated epoch_closed event in $EVENTS"

# 6. Flight recorder: the breach forced an epoch-tagged dump.
ls "$FLIGHT"/flight-e*-*.trace.json >/dev/null 2>&1 \
    || fail "no epoch-tagged flight dump in $FLIGHT: $(ls "$FLIGHT" 2>/dev/null || true)"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
echo "ops-smoke: PASS"
