package lppa_test

import (
	"math/rand"
	"testing"

	"lppa"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does: dataset → population → private round → attack →
// metrics.
func TestFacadeEndToEnd(t *testing.T) {
	ds, err := lppa.GenerateDataset(lppa.DatasetConfig{
		Grid:     lppa.Grid{Rows: 20, Cols: 20, SideMeters: 75_000},
		Channels: 10,
		Profiles: nil, // filled below
	}, 1)
	if err == nil {
		t.Fatal("expected error for missing profiles")
	}
	cfg := lppa.DefaultDatasetConfig()
	cfg.Grid = lppa.Grid{Rows: 20, Cols: 20, SideMeters: 75_000}
	cfg.Channels = 10
	ds, err = lppa.GenerateDataset(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	area := ds.Areas[2]

	sc, err := lppa.NewScenario(area, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	pop, err := lppa.NewPopulation(area, 15, lppa.DefaultBidConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := lppa.DeriveKeyRing([]byte("facade"), sc.Params.Channels, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lppa.Run(sc.Params, ring, lppa.RoundInput{Points: lppa.Points(pop), Bids: sc.TruncatedBids(pop),
		Policy: lppa.DisguisePolicy{P0: 0.8, Decay: 0.9}, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}

	// Attack the plaintext baseline for comparison.
	reports := make([]lppa.PrivacyReport, 0, pop.N())
	for i, su := range pop.SUs {
		p, err := lppa.BCMFromBids(area, pop.Bids[i])
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, lppa.EvaluatePrivacy(p, su.Cell))
	}
	agg := lppa.SummarizePrivacy(reports)
	if agg.Victims != 15 {
		t.Errorf("victims = %d", agg.Victims)
	}
	if agg.FailureRate != 0 {
		t.Errorf("honest-bid BCM should never fail, failure = %f", agg.FailureRate)
	}
}

func TestFacadeTheorem(t *testing.T) {
	d := lppa.UniformDisguiseDist(50)
	pf, err := lppa.Theorem1(d, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pf <= 0 || pf >= 1 {
		t.Errorf("p_f = %f out of (0,1)", pf)
	}
}

func TestFacadeBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := []lppa.Point{{X: 1, Y: 1}, {X: 30, Y: 30}}
	bids := [][]uint64{{5, 0}, {7, 9}}
	out, err := lppa.RunPlainBaseline(points, bids, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Revenue == 0 {
		t.Error("no revenue")
	}
}

// TestFacadeWrapperCoverage exercises the remaining thin wrappers so the
// facade is fully smoke-tested.
func TestFacadeWrapperCoverage(t *testing.T) {
	if lppa.DefaultGrid().NumCells() != 10000 {
		t.Error("DefaultGrid wrong")
	}
	if lppa.DefaultDisguise().Validate() != nil {
		t.Error("DefaultDisguise invalid")
	}
	ring, err := lppa.NewKeyRing(2, 3, 4)
	if err != nil || ring.Channels() != 2 {
		t.Fatalf("NewKeyRing: %v", err)
	}
	params := lppa.Params{Channels: 2, Lambda: 2, MaxX: 20, MaxY: 20, BMax: 50}
	sub, err := lppa.NewLocationSubmission(params, ring, lppa.Point{X: 5, Y: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !lppa.Conflicts(sub, sub) {
		t.Error("self-conflict must hold")
	}
	if _, err := lppa.NewSeries(params, ring, 10, 10, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := lppa.NewCardinalityTable(50); err != nil {
		t.Fatal(err)
	}

	// Second-price and interactive variants through the facade.
	points := []lppa.Point{{X: 1, Y: 1}, {X: 15, Y: 15}}
	bids := [][]uint64{{10, 20}, {30, 5}}
	if _, err := lppa.Run(params, ring, lppa.RoundInput{Points: points, Bids: bids, Policy: lppa.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(2))}, lppa.WithSecondPrice()); err != nil {
		t.Fatal(err)
	}
	if _, err := lppa.Run(params, ring, lppa.RoundInput{Points: points, Bids: bids, Policy: lppa.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(3))}, lppa.WithInteractiveCharging()); err != nil {
		t.Fatal(err)
	}

	// Attack wrappers on a tiny dataset.
	cfg := lppa.DefaultDatasetConfig()
	cfg.Grid = lppa.Grid{Rows: 12, Cols: 12, SideMeters: 75_000}
	cfg.Channels = 6
	ds, err := lppa.GenerateDataset(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	area := ds.Areas[0]
	if _, _, err := lppa.BCMRobust(area, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := lppa.BCM(area, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := lppa.TopFractionChannels([][]int{{0}}, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	mr := lppa.DefaultMultiRoundConfig()
	mr.Bidders, mr.Channels, mr.Rounds = 4, 6, 2
	if _, err := lppa.MultiRound(area, mr, 3); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ds.gob"
	if _, err := lppa.LoadOrGenerateDataset(path, cfg, 2); err != nil {
		t.Fatal(err)
	}
}
